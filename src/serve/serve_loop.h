// ServeLoop — transports for the newline protocol (protocol.h).
//
// Two transports share one dispatcher:
//   * run(in, out)        — stdio / any iostream pair; one request per
//                           line until EOF or `quit`. What `rebert_cli
//                           serve` uses by default, and what the tests
//                           drive with stringstreams.
//   * run_unix_socket(p)  — AF_UNIX stream server at path p; one handler
//                           thread per connection, each speaking the same
//                           line protocol. `quit` closes that connection
//                           only; stop() (or destruction) shuts the
//                           listener down and joins the handlers.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>

#include "serve/engine.h"

namespace rebert::serve {

class ServeLoop {
 public:
  explicit ServeLoop(InferenceEngine& engine) : engine_(engine) {}

  /// Dispatch one request line to the engine; returns the response line
  /// (without trailing newline). Sets *quit on a quit request. Exceptions
  /// from the engine become `err` responses — a malformed request must
  /// never take the daemon down.
  std::string handle_line(const std::string& line, bool* quit);

  /// Serve `in` line by line until EOF or quit, writing one response line
  /// per request to `out`. Blank and comment lines are skipped silently.
  /// Returns the number of requests answered.
  std::size_t run(std::istream& in, std::ostream& out);

  /// Listen on an AF_UNIX stream socket (the path is unlinked first and
  /// on shutdown). Blocks until stop() is called from another thread.
  /// Throws util::CheckError when the socket cannot be created or bound.
  void run_unix_socket(const std::string& path);

  /// Ask run_unix_socket to shut down: stops accepting, closes the
  /// listener, joins connection handlers. Safe from any thread.
  void stop();

 private:
  void handle_connection(int fd);

  InferenceEngine& engine_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
};

}  // namespace rebert::serve
