// ServeLoop — transports for the serving protocol (protocol.h text form,
// wire/message.h binary form).
//
// Two transports share one dispatcher:
//   * run(in, out)        — stdio / any iostream pair; one request per
//                           line until EOF or `quit`. What `rebert_cli
//                           serve` uses by default, and what the tests
//                           drive with stringstreams.
//   * run_unix_socket(p)  — AF_UNIX stream server at path p (transport
//                           provided by SocketServer; ServeLoop plugs the
//                           engine dispatcher into its callbacks). `quit`
//                           closes that connection only; stop() (or
//                           destruction) shuts the listener down and joins
//                           the handlers.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/socket_server.h"
#include "util/mutex.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace rebert::serve {

class ServeLoop {
 public:
  explicit ServeLoop(InferenceEngine& engine);

  /// The one dispatcher behind every transport and both encodings:
  /// admission, deadlines, engine calls, degraded tagging. Returns the
  /// encoding-neutral response; sets *quit on a quit request. Never
  /// throws — engine failures come back as error responses, so a
  /// malformed request can never take the daemon down.
  wire::Response dispatch(const Request& request, bool* quit);

  /// Dispatch one request line to the engine; returns the response line
  /// (without trailing newline) — response_to_line over dispatch().
  std::string handle_line(const std::string& line, bool* quit);

  /// Dispatch one verified kRequest frame; returns the complete response
  /// frame bytes. A payload that fails message decoding answers this
  /// request with an error frame — the connection survives (framing-level
  /// corruption is SocketServer's to punish).
  std::string handle_frame(const wire::Frame& frame, bool* close);

  /// Serve `in` line by line until EOF or quit, writing one response line
  /// per request to `out`. Blank and comment lines are skipped silently.
  /// Returns the number of requests answered.
  std::size_t run(std::istream& in, std::ostream& out);

  /// Listen on an AF_UNIX stream socket (the path is unlinked first and
  /// on shutdown). Blocks until stop() is called from another thread.
  /// Throws util::CheckError when the socket cannot be created or bound.
  void run_unix_socket(const std::string& path);

  /// Ask run_unix_socket to shut down: stops accepting, closes the
  /// listener, joins connection handlers. Safe from any thread.
  void stop() { socket_server_.stop(); }

  /// Persist the engine's prediction cache to `path` after every
  /// `every_n` answered requests, and once more when a serving loop exits
  /// cleanly (EOF, quit, stop()). Snapshots are atomic (temp + fsync +
  /// rename), so a crash mid-snapshot leaves the previous one intact.
  /// Call before serving; `every_n < 1` snapshots only on shutdown.
  void enable_snapshots(std::string path, int every_n);

  /// Snapshot now (no-op unless enable_snapshots was called). `force`
  /// ignores the request cadence — used on clean shutdown. Concurrent
  /// callers coalesce: a cadence-triggered save that finds another save in
  /// flight skips instead of queueing. Save failures are logged, never
  /// thrown — losing a snapshot must not take down serving.
  void snapshot_cache(bool force) EXCLUDES(snapshot_mu_);

  /// Default deadline applied to score/recover requests that carry no
  /// deadline_ms field of their own; 0 (the default) imposes none. An
  /// expired deadline answers `err deadline_exceeded`.
  void set_default_deadline_ms(int ms) { default_deadline_ms_ = ms; }

  /// Cap on concurrently served socket connections; 0 = unlimited. A
  /// connection arriving over the cap is refused in its own encoding —
  /// `err overloaded retry_after_ms=<n>` for text, a frame-encoded
  /// overloaded response for binary — and closed; it never dispatches.
  void set_max_connections(int n) { socket_server_.set_max_connections(n); }

  /// Gate the binary wire protocol on the socket transport (default on).
  /// Off, connections opening with the frame magic are refused; the text
  /// protocol is unaffected.
  void set_accept_binary(bool accept) {
    socket_server_.set_accept_binary(accept);
  }

  /// listen(2) backlog for the socket transport; <= 0 (default) means
  /// SOMAXCONN, so connection storms queue in the kernel long enough for
  /// admission control to answer instead of ECONNREFUSED.
  void set_listen_backlog(int backlog) {
    socket_server_.set_listen_backlog(backlog);
  }

  /// Threads in the socket transport's dispatch pool (the reactor never
  /// runs model work itself); <= 0 keeps the SocketServer default.
  void set_dispatch_threads(int n) { socket_server_.set_dispatch_threads(n); }

 private:
  void count_request_for_snapshot();

  InferenceEngine& engine_;
  SocketServer socket_server_;
  int default_deadline_ms_ = 0;

  std::string snapshot_path_;
  int snapshot_every_ = 0;
  std::atomic<std::uint64_t> answered_since_snapshot_{0};
  util::Mutex snapshot_mu_{"serve.snapshot"};  // serializes actual saves
};

}  // namespace rebert::serve
