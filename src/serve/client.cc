#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>

#include "serve/protocol.h"
#include "util/backoff.h"
#include "util/check.h"
#include "util/retry_eintr.h"
#include "util/string_utils.h"
#include "wire/message.h"

namespace rebert::serve {

namespace {

/// Distinguishes simultaneous clients of one socket path when no explicit
/// backoff_seed is given — two clients dialing the same daemon must not
/// share a jitter schedule or the jitter buys nothing.
std::uint64_t next_client_ordinal() {
  static std::atomic<std::uint64_t> ordinal{0};
  return ordinal.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Client::Client(std::string socket_path, ClientOptions options)
    : path_(std::move(socket_path)), options_(options) {
  jitter_seed_ =
      options_.backoff_seed != 0
          ? options_.backoff_seed
          : util::fnv1a64(path_.data(), path_.size()) ^
                util::splitmix64(next_client_ordinal());
}

Client::~Client() { close(); }

bool Client::connect() {
  if (fd_ >= 0) return true;
  REBERT_CHECK_MSG(path_.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long: " + path_);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    REBERT_CHECK_MSG(fd >= 0, "socket() failed");
    const int result = util::retry_eintr([&] {
      return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    });
    if (result == 0) {
      fd_ = fd;
      if (!options_.binary) return true;
      // A reconnect must re-run the negotiation from scratch: the server
      // side of the old agreement died with the old connection.
      switch (negotiate()) {
        case Negotiation::kAck:
          return true;
        case Negotiation::kRefused:
          // A server that accepted the connection but refused the hello
          // is answering deterministically — polling would refuse 200
          // times.
          close();
          return false;
        case Negotiation::kOverloaded:
          // Shed at the connection door with a retryable advisory: back
          // off by the server's delay — clamped, because the value is
          // attacker-controlled input and an unbounded sleep would wedge
          // the calling thread for as long as a hostile server asks —
          // then re-poll; a slot may free up within the polling budget.
          close();
          std::this_thread::sleep_for(
              std::chrono::milliseconds(util::apply_backoff_jitter(
                  std::min(options_.max_connect_backoff_ms,
                           std::max(last_overload_retry_after_ms_,
                                    options_.connect_poll_ms)),
                  jitter_seed_, jitter_sequence_++,
                  options_.backoff_jitter_pct)));
          continue;
      }
    }
    ::close(fd);
    // ENOENT / ECONNREFUSED: the daemon has not bound yet — poll.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.connect_poll_ms));
  }
  return false;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  reader_.reset();
  negotiated_ = false;
}

std::string Client::read_line() {
  std::size_t newline;
  while ((newline = buffer_.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t got = util::retry_eintr([&] {
      return ::read(fd_, chunk, sizeof(chunk));
    });
    REBERT_CHECK_MSG(got > 0, "serve client: connection to " + path_ +
                                  " closed mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
  std::string line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  return line;
}

void Client::send_all(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = util::retry_eintr([&] {
      return ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                    MSG_NOSIGNAL);
    });
    REBERT_CHECK_MSG(n > 0, "serve client: send to " + path_ + " failed: " +
                                util::errno_string(errno));
    sent += static_cast<std::size_t>(n);
  }
}

wire::Frame Client::read_frame() {
  wire::Frame frame;
  std::string error;
  for (;;) {
    switch (reader_.next(&frame, &error)) {
      case wire::FrameReader::Status::kFrame:
        return frame;
      case wire::FrameReader::Status::kError:
        REBERT_CHECK_MSG(false, "serve client: framing error from " + path_ +
                                    ": " + error);
        break;
      case wire::FrameReader::Status::kNeedMore:
        break;
    }
    char chunk[4096];
    const ssize_t got = util::retry_eintr([&] {
      return ::read(fd_, chunk, sizeof(chunk));
    });
    REBERT_CHECK_MSG(got > 0, "serve client: connection to " + path_ +
                                  " closed mid-frame");
    reader_.feed(chunk, static_cast<std::size_t>(got));
  }
}

Client::Negotiation Client::negotiate() {
  try {
    send_all(wire::encode_hello());
    const wire::Frame ack = read_frame();
    if (ack.type == wire::FrameType::kHelloAck) {
      negotiated_ = true;
      return Negotiation::kAck;
    }
    if (ack.type == wire::FrameType::kResponse) {
      // Not an ack but a well-formed response frame: the server shed this
      // connection at the max_connections door. Surface the advisory
      // delay so connect() can back off instead of giving up.
      wire::Response response;
      std::string error;
      if (wire::decode_response_payload(ack.payload, &response, &error) &&
          response.code == wire::ErrorCode::kOverloaded) {
        last_overload_retry_after_ms_ =
            static_cast<int>(response.retry_after_ms);
        return Negotiation::kOverloaded;
      }
    }
  } catch (const util::CheckError&) {
    // Send failure, EOF, or a framing error before the ack — the server
    // either refused binary or is not speaking this protocol at all.
  }
  return Negotiation::kRefused;
}

wire::Frame Client::request_frame(const std::string& frame_bytes) {
  REBERT_CHECK_MSG(fd_ >= 0 && negotiated_,
                   "serve client: no negotiated binary connection to " +
                       path_);
  send_all(frame_bytes);
  return read_frame();
}

std::string Client::request(const std::string& line) {
  REBERT_CHECK_MSG(fd_ >= 0, "serve client: not connected to " + path_);
  if (negotiated_) {
    // Transcode: text line in, request frame out, response frame back,
    // exact text line returned — callers never notice the encoding.
    const Request parsed = parse_request(line);
    if (parsed.type == RequestType::kInvalid)
      return format_error(parsed.error.empty() ? "empty request"
                                               : parsed.error);
    const wire::Frame reply =
        request_frame(wire::encode_request(to_wire(parsed)));
    if (reply.type == wire::FrameType::kError)
      return format_error(reply.payload);
    REBERT_CHECK_MSG(reply.type == wire::FrameType::kResponse,
                     "serve client: unexpected frame type from " + path_);
    wire::Response response;
    std::string error;
    REBERT_CHECK_MSG(
        wire::decode_response_payload(reply.payload, &response, &error),
        "serve client: malformed response payload from " + path_ + ": " +
            error);
    return wire::response_to_line(response);
  }
  send_all(line + "\n");
  return read_line();
}

std::string Client::request_with_retry(const std::string& line) {
  std::string response;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    response = request(line);
    const int retry_after_ms = parse_retry_after_ms(response);
    if (retry_after_ms < 0) return response;  // not an overload shed
    if (attempt == options_.max_attempts) break;  // budget spent
    ++retries_;
    const int doubled =
        options_.base_backoff_ms << std::min(attempt - 1, 20);
    const int backoff = std::min(options_.max_backoff_ms,
                                 std::max(retry_after_ms, doubled));
    // Seeded jitter spreads a fleet's identical advisories apart; with
    // jitter_pct = 0 (default) this is exactly the historic schedule.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(util::apply_backoff_jitter(
            backoff, jitter_seed_, jitter_sequence_++,
            options_.backoff_jitter_pct)));
  }
  return response;
}

}  // namespace rebert::serve
