#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.h"
#include "util/check.h"
#include "util/retry_eintr.h"
#include "util/string_utils.h"

namespace rebert::serve {

Client::Client(std::string socket_path, ClientOptions options)
    : path_(std::move(socket_path)), options_(options) {}

Client::~Client() { close(); }

bool Client::connect() {
  if (fd_ >= 0) return true;
  REBERT_CHECK_MSG(path_.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long: " + path_);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    REBERT_CHECK_MSG(fd >= 0, "socket() failed");
    const int result = util::retry_eintr([&] {
      return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
    });
    if (result == 0) {
      fd_ = fd;
      return true;
    }
    ::close(fd);
    // ENOENT / ECONNREFUSED: the daemon has not bound yet — poll.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.connect_poll_ms));
  }
  return false;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::string Client::read_line() {
  std::size_t newline;
  while ((newline = buffer_.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t got = util::retry_eintr([&] {
      return ::read(fd_, chunk, sizeof(chunk));
    });
    REBERT_CHECK_MSG(got > 0, "serve client: connection to " + path_ +
                                  " closed mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
  std::string line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  return line;
}

std::string Client::request(const std::string& line) {
  REBERT_CHECK_MSG(fd_ >= 0, "serve client: not connected to " + path_);
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = util::retry_eintr([&] {
      return ::send(fd_, framed.data() + sent, framed.size() - sent,
                    MSG_NOSIGNAL);
    });
    REBERT_CHECK_MSG(n > 0, "serve client: send to " + path_ + " failed: " +
                                util::errno_string(errno));
    sent += static_cast<std::size_t>(n);
  }
  return read_line();
}

std::string Client::request_with_retry(const std::string& line) {
  std::string response;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    response = request(line);
    const int retry_after_ms = parse_retry_after_ms(response);
    if (retry_after_ms < 0) return response;  // not an overload shed
    if (attempt == options_.max_attempts) break;  // budget spent
    ++retries_;
    const int doubled =
        options_.base_backoff_ms << std::min(attempt - 1, 20);
    const int backoff = std::min(options_.max_backoff_ms,
                                 std::max(retry_after_ms, doubled));
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
  return response;
}

}  // namespace rebert::serve
