#include "serve/socket_server.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/fault_injector.h"
#include "runtime/thread_pool.h"
#include "serve/protocol.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_utils.h"
#include "wire/message.h"

namespace rebert::serve {

namespace {

// Hard ceiling on one connection's pending output. Per-connection dispatch
// is serialized (one in-flight request, one queued response), so the queue
// holds at most one response plus protocol chatter; the cap only guards
// against a future caller returning something pathological.
constexpr std::size_t kMaxWriteQueueBytes = 4u << 20;

constexpr int kMaxEpollEvents = 256;

/// Collapse an exception message to one response-safe line.
std::string error_single_line(const char* what) {
  std::string text = what == nullptr ? "dispatch failed" : what;
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

}  // namespace

// The per-run() epoll state machine. Everything here — the listener, the
// epoll set, every Conn — is owned and touched by the reactor thread
// only; the single cross-thread surface is the completion queue under
// `mu`, fed by dispatch-pool workers and drained on eventfd wakeups.
struct SocketServer::Reactor {
  enum class Mode { kDetect, kText, kBinary };

  struct Conn {
    int fd = -1;
    // Identity for completions: a dispatch in flight names its connection
    // by id, never fd, so a response finished after the connection died
    // (and the fd number was reused) is dropped instead of misdelivered.
    std::uint64_t id = 0;
    Mode mode = Mode::kDetect;
    bool negotiated = false;        // binary: kHello seen and acked
    bool shed = false;              // over the cap: refuse at first byte
    bool busy = false;              // a dispatch is in flight
    bool close_after_flush = false; // end the connection once out drains
    bool answered_pending = false;  // fire on_answered when out drains
    std::uint32_t interest = 0;     // events currently registered in epoll
    std::string in;                 // bytes read, not yet parsed
    wire::FrameReader reader;       // binary framing state
    std::string out;                // bounded write queue (partial sends)
    std::size_t out_off = 0;
  };

  using Completion = SocketServer::Completion;

  explicit Reactor(SocketServer& server) : server_(server) {}

  SocketServer& server_;
  runtime::FaultInjector& faults_ = runtime::FaultInjector::global();
  int epoll_fd = -1;
  int listener = -1;
  // Descriptor exhaustion (EMFILE/ENFILE) parks the listener outside the
  // epoll set — level-triggered readiness on a listener we cannot accept
  // from would otherwise spin the loop at 100% CPU. Re-armed when a
  // descriptor frees up or on the retry tick.
  bool listener_paused = false;

  std::unordered_map<int, Conn> conns;                  // keyed by fd
  std::unordered_map<std::uint64_t, int> fd_by_id;      // id -> live fd
  int live = 0;  // connections counted against max_connections (not shed)

  bool stopping() const {
    return server_.stopping_.load(std::memory_order_acquire);
  }

  void drain_wake_fd() {
    std::uint64_t counter = 0;
    (void)!::read(server_.wake_fd_, &counter, sizeof(counter));
  }

  // ---- epoll bookkeeping ----------------------------------------------

  /// Register `fd` for `events`; false on failure (max_user_watches,
  /// ENOMEM — reachable pressure at C10K scale, so per-connection call
  /// sites shed the one connection instead of dying).
  bool try_watch(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  /// Fatal registration for run()'s own plumbing (wake eventfd, listener
  /// at startup) — without those there is no server to degrade to.
  void watch(int fd, std::uint32_t events) {
    REBERT_CHECK_MSG(try_watch(fd, events),
                     "epoll_ctl(ADD) failed: " + util::errno_string(errno));
  }

  void pause_listener() {
    if (listener_paused) return;
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener, nullptr);
    listener_paused = true;
    LOG_WARN << "serve: out of descriptors; pausing accepts until one "
                "frees up";
  }

  void resume_listener() {
    if (!listener_paused) return;
    // Still starved (epoll_ctl needs resources too): stay parked; the
    // loop's retry tick calls back here.
    if (!try_watch(listener, EPOLLIN)) return;
    listener_paused = false;
  }

  /// Level-triggered interest for `conn`'s current state. Reads pause
  /// while a dispatch is in flight or output is pending — the kernel
  /// buffer is the backpressure, exactly like the blocked per-connection
  /// thread used to be.
  void update_interest(Conn& conn) {
    std::uint32_t desired = 0;
    if (!conn.out.empty()) desired |= EPOLLOUT;
    if (!conn.busy && conn.out.empty() && !conn.close_after_flush)
      desired |= EPOLLIN;
    if (desired == conn.interest) return;
    epoll_event ev{};
    ev.events = desired;
    ev.data.fd = conn.fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
      conn.interest = desired;
  }

  // ---- connection lifecycle -------------------------------------------

  void accept_ready() {
    while (!listener_paused) {
      const int fd = ::accept4(listener, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EMFILE || errno == ENFILE || errno == ENOMEM)
          pause_listener();
        break;  // EAGAIN: drained; anything else: try again next tick
      }
      Conn conn;
      conn.fd = fd;
      conn.id = server_.next_conn_id_++;
      // Over the cap: accept anyway, but park the connection until its
      // first byte tells us which encoding to refuse it in. A shed
      // connection never dispatches and never counts against the cap.
      conn.shed = server_.max_connections_ > 0 &&
                  live >= server_.max_connections_;
      if (!conn.shed) ++live;
      conn.interest = EPOLLIN;
      fd_by_id[conn.id] = fd;
      conns.emplace(fd, std::move(conn));
      if (!try_watch(fd, EPOLLIN)) {
        // epoll registration failed under resource pressure: shed this
        // one connection — the peer sees a close — and keep serving.
        LOG_WARN << "serve: epoll_ctl(ADD) failed for a new connection ("
                 << util::errno_string(errno) << "); dropping it";
        close_conn(conns.at(fd));
      }
    }
  }

  void close_conn(Conn& conn) {
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    if (!conn.shed) --live;
    fd_by_id.erase(conn.id);
    conns.erase(conn.fd);  // invalidates `conn` — must be last
    // A descriptor just freed up; if accepts were parked on EMFILE this
    // is the moment to re-arm (no-op otherwise, or during shutdown —
    // the drain already took the listener out of the set for good).
    if (!stopping()) resume_listener();
  }

  // ---- output ----------------------------------------------------------

  /// Queue response bytes. Returns false (caller must close_conn) when
  /// the write queue would exceed its bound.
  bool enqueue(Conn& conn, const std::string& bytes) {
    if (conn.out.size() - conn.out_off + bytes.size() > kMaxWriteQueueBytes)
      return false;
    conn.out.append(bytes);
    return true;
  }

  /// Push queued output to the kernel until done or EAGAIN. Returns false
  /// when the connection died under us (EPIPE, injected socket.send
  /// fault); the caller must close_conn.
  bool flush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      // The socket.send chaos site fires per write attempt, exactly where
      // the per-connection thread's send loop used to arm it.
      if (faults_.maybe_errno("socket.send", EPIPE)) return false;
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // EPIPE / ECONNRESET / peer gone
    }
    conn.out.clear();
    conn.out_off = 0;
    return true;
  }

  // ---- parsing & dispatch ----------------------------------------------

  void begin_dispatch() {
    util::MutexLock lock(server_.completion_mu_);
    ++server_.inflight_;
  }

  /// Hand one text line to the dispatch pool. The connection stays busy —
  /// reads paused, no further parsing — until its completion comes back.
  /// The worker lambda captures the SocketServer, never this Reactor: it
  /// may still be running after run() has destroyed the reactor, and
  /// everything it touches must outlive that moment.
  void dispatch_line(Conn& conn, std::string line) {
    conn.busy = true;
    const std::uint64_t id = conn.id;
    SocketServer* server = &server_;
    begin_dispatch();
    try {
      server_.pool_->submit([server, id, line = std::move(line)] {
        Completion done{id, std::string(), /*close=*/false,
                        /*answered=*/true};
        try {
          bool close = false;
          done.bytes = server->callbacks_.handle_line(line, &close) + "\n";
          done.close = close;
        } catch (const std::exception& e) {
          // handle_line is contracted not to throw, but if it does the
          // request still gets an answer and — critically — inflight
          // still decrements, so the connection is never wedged busy and
          // stop()'s drain cannot spin forever.
          done.bytes = format_error(error_single_line(e.what())) + "\n";
        } catch (...) {
          done.bytes = format_error("dispatch failed") + "\n";
        }
        server->complete(std::move(done));
      });
    } catch (const std::exception& e) {
      // The pool.submit chaos site trips here: the request still gets a
      // well-formed error answer instead of a dropped connection.
      server_.complete({id, format_error(error_single_line(e.what())) + "\n",
                        /*close=*/false, /*answered=*/true});
    }
  }

  void dispatch_frame(Conn& conn, wire::Frame frame) {
    conn.busy = true;
    const std::uint64_t id = conn.id;
    SocketServer* server = &server_;
    begin_dispatch();
    try {
      server_.pool_->submit([server, id, frame = std::move(frame)] {
        Completion done{id, std::string(), /*close=*/false,
                        /*answered=*/true};
        try {
          bool close = false;
          done.bytes = server->callbacks_.handle_frame(frame, &close);
          done.close = close;
        } catch (const std::exception& e) {
          done.bytes = wire::encode_response(wire::error_response(
              wire::Verb::kHelp, error_single_line(e.what())));
        } catch (...) {
          done.bytes = wire::encode_response(
              wire::error_response(wire::Verb::kHelp, "dispatch failed"));
        }
        server->complete(std::move(done));
      });
    } catch (const std::exception& e) {
      server_.complete({id,
                        wire::encode_response(wire::error_response(
                            wire::Verb::kHelp, error_single_line(e.what()))),
                        /*close=*/false, /*answered=*/true});
    }
  }

  /// Refuse a parked over-cap connection in its own encoding, now that
  /// its first byte told us which one that is.
  bool refuse_shed(Conn& conn) {
    const bool binary =
        static_cast<unsigned char>(conn.in[0]) == wire::kFrameMagic;
    std::string refusal;
    if (binary) {
      refusal = server_.callbacks_.overload_frame
                    ? server_.callbacks_.overload_frame()
                    : wire::encode_response(wire::overloaded_response(0));
    } else {
      refusal = (server_.callbacks_.overload_line
                     ? server_.callbacks_.overload_line()
                     : std::string("err overloaded")) +
                "\n";
    }
    conn.in.clear();
    conn.close_after_flush = true;
    return enqueue(conn, refusal);
  }

  /// Advance the connection's protocol state machine: detect the
  /// encoding, parse what `in` holds, enqueue protocol chatter inline,
  /// dispatch at most one request. Returns true when it made progress
  /// that may unblock another pump iteration.
  bool process_input(Conn& conn) {
    if (conn.busy || conn.close_after_flush || !conn.out.empty())
      return false;
    // Once stop() is in, nothing new dispatches — ever. Without this, the
    // shutdown drain's final pump of a completed connection would parse
    // the next buffered pipelined request and submit it to the pool after
    // the drain already decided nothing was left, and run() would destroy
    // the reactor under a live worker.
    if (stopping()) return false;
    if (conn.in.empty() && conn.mode != Mode::kBinary) return false;

    if (conn.mode == Mode::kDetect) {
      if (conn.shed) return refuse_shed(conn) || true;
      if (static_cast<unsigned char>(conn.in[0]) == wire::kFrameMagic) {
        if (!server_.accept_binary_.load(std::memory_order_relaxed) ||
            !server_.callbacks_.handle_frame) {
          conn.close_after_flush = true;
          (void)enqueue(conn, wire::encode_protocol_error(
                                  "binary protocol not enabled on this "
                                  "endpoint"));
          return true;
        }
        conn.mode = Mode::kBinary;
      } else {
        conn.mode = Mode::kText;
      }
    }

    if (conn.mode == Mode::kBinary) return process_binary(conn);
    return process_text(conn);
  }

  bool process_text(Conn& conn) {
    bool progressed = false;
    std::size_t newline;
    while (!conn.busy && conn.out.empty() &&
           (newline = conn.in.find('\n')) != std::string::npos) {
      std::string line = conn.in.substr(0, newline);
      conn.in.erase(0, newline + 1);
      progressed = true;
      if (line.size() > kMaxRequestLineBytes) {
        conn.close_after_flush = true;
        (void)enqueue(conn, format_line_too_long() + "\n");
        return true;
      }
      if (server_.callbacks_.is_blank && server_.callbacks_.is_blank(line))
        continue;
      dispatch_line(conn, std::move(line));
      return true;
    }
    if (!conn.busy && conn.in.size() > kMaxRequestLineBytes) {
      // A partial line already over the cap can never become a valid
      // request — refuse now instead of buffering until the client stops.
      conn.close_after_flush = true;
      (void)enqueue(conn, format_line_too_long() + "\n");
      return true;
    }
    return progressed;
  }

  bool process_binary(Conn& conn) {
    if (!conn.in.empty()) {
      conn.reader.feed(conn.in.data(), conn.in.size());
      conn.in.clear();
    }
    bool progressed = false;
    wire::Frame frame;
    std::string error;
    while (!conn.busy && conn.out.empty() && !conn.close_after_flush) {
      const wire::FrameReader::Status status = conn.reader.next(&frame,
                                                                &error);
      if (status == wire::FrameReader::Status::kNeedMore) break;
      progressed = true;
      if (status == wire::FrameReader::Status::kError) {
        // After a framing error there is no safe resync point in the
        // stream: report what broke and close.
        conn.close_after_flush = true;
        (void)enqueue(conn, wire::encode_protocol_error(error));
        return true;
      }
      if (!conn.negotiated) {
        // The stream must open with a kHello we can version-match;
        // anything else is refused before any request is served.
        std::uint16_t version = 0;
        std::string hello_error;
        if (frame.type != wire::FrameType::kHello ||
            !wire::decode_hello_payload(frame.payload, &version,
                                        &hello_error)) {
          conn.close_after_flush = true;
          (void)enqueue(conn, wire::encode_protocol_error(
                                  "expected a hello frame to open the "
                                  "binary stream"));
          return true;
        }
        if (version != wire::kWireVersion) {
          conn.close_after_flush = true;
          (void)enqueue(conn,
                        wire::encode_protocol_error(
                            "unsupported wire version " +
                            std::to_string(version)));
          return true;
        }
        conn.negotiated = true;
        (void)enqueue(conn, wire::encode_hello_ack());
        return true;
      }
      if (frame.type != wire::FrameType::kRequest) {
        conn.close_after_flush = true;
        (void)enqueue(conn, wire::encode_protocol_error(
                                "only request frames are valid after "
                                "negotiation"));
        return true;
      }
      dispatch_frame(conn, std::move(frame));
      return true;
    }
    return progressed;
  }

  /// Drive one connection as far as it can go right now: flush pending
  /// output, fire on_answered / close-after-flush once drained, parse and
  /// dispatch the next request, repeat until blocked. The one entry point
  /// every readiness event and completion funnels through.
  void pump(int fd) {
    for (;;) {
      auto it = conns.find(fd);
      if (it == conns.end()) return;
      Conn& conn = it->second;
      if (!flush(conn)) {
        close_conn(conn);
        return;
      }
      if (!conn.out.empty()) break;  // kernel buffer full: wait EPOLLOUT
      if (conn.answered_pending) {
        conn.answered_pending = false;
        fire_answered();
        continue;
      }
      if (conn.close_after_flush) {
        close_conn(conn);
        return;
      }
      if (conn.busy) break;
      if (!process_input(conn)) break;
    }
    auto it = conns.find(fd);
    if (it != conns.end()) update_interest(it->second);
  }

  /// Cadence hooks (ServeLoop wires cache snapshots — disk I/O) run on
  /// the dispatch pool: inline on the reactor thread, one snapshot write
  /// would stall accepts and every connection's reads and writes for its
  /// duration. Fire-and-forget — a submit failure (injected pool.submit
  /// fault) drops this one firing; the hook is a cadence signal and the
  /// next flushed response re-fires it.
  void fire_answered() {
    if (!server_.callbacks_.on_answered) return;
    SocketServer* server = &server_;
    try {
      server_.pool_->submit([server] {
        try {
          server->callbacks_.on_answered();
        } catch (...) {
          // A hook failure is the owner's business, never a worker death.
        }
      });
    } catch (...) {
    }
  }

  void conn_readable(Conn& conn) {
    // The socket.read chaos site simulates the hard-error path: this
    // connection drops, the daemon keeps serving.
    if (faults_.maybe_errno("socket.read", EIO)) {
      close_conn(conn);
      return;
    }
    char chunk[4096];
    const ssize_t got = ::read(conn.fd, chunk, sizeof(chunk));
    if (got > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(got));
      pump(conn.fd);
      return;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR))
      return;  // level-triggered epoll redelivers
    close_conn(conn);  // EOF or hard error: drop the connection
  }

  void apply_completions() {
    std::vector<Completion> batch;
    {
      util::MutexLock lock(server_.completion_mu_);
      batch.swap(server_.completions_);
    }
    for (Completion& completion : batch) {
      const auto fd_it = fd_by_id.find(completion.conn_id);
      if (fd_it == fd_by_id.end()) continue;  // connection died meanwhile
      Conn& conn = conns.at(fd_it->second);
      conn.busy = false;
      conn.answered_pending = completion.answered;
      if (completion.close) conn.close_after_flush = true;
      if (!enqueue(conn, completion.bytes)) {
        close_conn(conn);
        continue;
      }
      pump(fd_it->second);
    }
  }

  /// True when no dispatch is in flight AND no completion is queued —
  /// both checked under one lock. A worker decrements inflight in the
  /// same critical section that queues its completion, so this
  /// conjunction (with dispatch gated off by stopping()) proves no
  /// worker will ever touch the queue again for this run.
  bool quiesced() {
    util::MutexLock lock(server_.completion_mu_);
    return server_.inflight_ == 0 && server_.completions_.empty();
  }

  // ---- the loop --------------------------------------------------------

  void loop() {
    epoll_event events[kMaxEpollEvents];
    while (!stopping()) {
      // Parked listener (descriptor exhaustion): poll on a timeout so the
      // re-arm below retries even if no close frees a descriptor first.
      const int n = ::epoll_wait(epoll_fd, events, kMaxEpollEvents,
                                 listener_paused ? 100 : -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      bool accept_pending = false;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == server_.wake_fd_) {
          drain_wake_fd();
          continue;
        }
        if (fd == listener) {
          // Accepts run after every close in this batch has been
          // processed, so a descriptor number freed here can never be
          // confused with a stale event earlier in the same batch.
          accept_pending = true;
          continue;
        }
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;  // closed earlier in this batch
        Conn& conn = it->second;
        const std::uint32_t got = events[i].events;
        if ((got & (EPOLLHUP | EPOLLERR)) != 0 && (got & EPOLLIN) == 0) {
          // Peer gone with nothing left to read. Also the only signal a
          // busy connection (interest 0) can receive — without this, a
          // level-triggered HUP would spin the reactor.
          close_conn(conn);
          continue;
        }
        if ((got & EPOLLIN) != 0 && (conn.interest & EPOLLIN) != 0) {
          conn_readable(conn);
          if (conns.find(fd) == conns.end()) continue;
        }
        if ((got & EPOLLOUT) != 0) pump(fd);
      }
      apply_completions();
      if (!stopping()) {
        resume_listener();  // no-op unless parked; retried every pass
        if (accept_pending) accept_ready();
      }
    }
    shutdown_drain();
  }

  /// stop()'s no-wedge ordering: close the door, let in-flight dispatches
  /// finish (their responses flushed best-effort — one non-blocking
  /// attempt, never a wait on a slow peer), then close every connection.
  void shutdown_drain() {
    if (!listener_paused)
      (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener, nullptr);
    // Stop watching connections: during the drain only completions
    // matter, and a readable-but-ignored connection would busy-spin a
    // level-triggered loop.
    for (auto& [fd, conn] : conns)
      (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    // Drain until quiesced: inflight alone is not enough — a completion
    // can land between apply_completions() and the check, and applying
    // it pumps the connection (flush only; process_input refuses to
    // dispatch once stopping()). Only "nothing in flight and nothing
    // queued", observed under one lock after an apply, guarantees no
    // worker has unfinished business with this run.
    for (;;) {
      apply_completions();
      if (quiesced()) break;
      epoll_event events[8];
      const int n = ::epoll_wait(epoll_fd, events, 8, 50);
      for (int i = 0; i < n; ++i)
        if (events[i].data.fd == server_.wake_fd_) drain_wake_fd();
    }
    while (!conns.empty()) close_conn(conns.begin()->second);
  }
};

SocketServer::SocketServer(Callbacks callbacks)
    : callbacks_(std::move(callbacks)) {
  REBERT_CHECK_MSG(static_cast<bool>(callbacks_.handle_line),
                   "SocketServer needs a handle_line callback");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  REBERT_CHECK_MSG(wake_fd_ >= 0, "eventfd() failed");
}

SocketServer::~SocketServer() {
  // Pool first: a worker completing during teardown pokes wake_fd_, which
  // must still be a live descriptor (never a reused number).
  pool_.reset();
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void SocketServer::complete(Completion completion) {
  {
    util::MutexLock lock(completion_mu_);
    completions_.push_back(std::move(completion));
    REBERT_CHECK_MSG(inflight_ > 0, "completion without a dispatch");
    --inflight_;
  }
  // Poke the reactor's eventfd. A full counter (never in practice) or
  // EINTR is fine: the already-pending readable state guarantees a
  // wakeup. If no run() is active the write is drained by the next one,
  // whose first apply_completions() drops this completion by id.
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void SocketServer::run(const std::string& path) {
  REBERT_CHECK_MSG(path.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long: " + path);
  // Only ever unlink something that is actually a socket: a path collision
  // with a regular file (a config, a checkpoint) must fail loudly, not
  // silently destroy the file.
  struct stat existing;
  if (::lstat(path.c_str(), &existing) == 0) {
    REBERT_CHECK_MSG(S_ISSOCK(existing.st_mode),
                     "refusing to serve on " + path +
                         ": path exists and is not a socket");
    ::unlink(path.c_str());
  }
  const int listener =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  REBERT_CHECK_MSG(listener >= 0, "socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int backlog = listen_backlog_ > 0 ? listen_backlog_ : SOMAXCONN;
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, backlog) != 0) {
    const std::string reason = util::errno_string(errno);
    ::close(listener);
    REBERT_CHECK_MSG(false, "cannot listen on " + path + ": " + reason);
  }
  // Belt and braces with the MSG_NOSIGNAL sends: nothing else in this
  // process wants SIGPIPE's default die-on-write either (a half-closed
  // stdio pipe would otherwise kill a daemon mid-reply).
  std::signal(SIGPIPE, SIG_IGN);

  if (!pool_) {
    const int threads =
        dispatch_threads_ > 0 ? dispatch_threads_ : kDefaultDispatchThreads;
    pool_ = std::make_unique<runtime::ThreadPool>(threads);
  }

  Reactor reactor(*this);
  reactor.listener = listener;
  reactor.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (reactor.epoll_fd < 0) {
    const std::string reason = util::errno_string(errno);
    ::close(listener);
    REBERT_CHECK_MSG(false, "epoll_create1 failed: " + reason);
  }
  reactor.watch(wake_fd_, EPOLLIN);
  reactor.watch(listener, EPOLLIN);
  LOG_INFO << "serve: listening on unix socket " << path
           << " (reactor, backlog " << backlog << ")";

  reactor.loop();

  ::close(listener);
  ::close(reactor.epoll_fd);
  ::unlink(path.c_str());
  if (callbacks_.on_shutdown) callbacks_.on_shutdown();
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

}  // namespace rebert::serve
