#include "serve/socket_server.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/fault_injector.h"
#include "serve/protocol.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/retry_eintr.h"
#include "util/string_utils.h"

namespace rebert::serve {

SocketServer::SocketServer(Callbacks callbacks)
    : callbacks_(std::move(callbacks)) {
  REBERT_CHECK_MSG(static_cast<bool>(callbacks_.handle_line),
                   "SocketServer needs a handle_line callback");
}

void SocketServer::handle_connection(int fd) {
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  // Each connection commits to one encoding on its first byte: the frame
  // magic (non-printable, so no text verb can start with it) selects the
  // binary protocol, anything else newline text.
  enum class Mode { kDetect, kText, kBinary };
  Mode mode = Mode::kDetect;
  bool negotiated = false;  // binary: kHello seen and acked
  wire::FrameReader reader;
  std::string buffer;
  char chunk[4096];
  bool quit = false;

  // Send every byte of `bytes`, MSG_NOSIGNAL: a client that disconnected
  // mid-response must cost us this connection (EPIPE), not the whole
  // daemon (SIGPIPE). Shared by both encodings so the socket.send chaos
  // site fires identically for lines and frames.
  const auto send_bytes = [&](const std::string& bytes) -> bool {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = -1;
      if (!faults.maybe_errno("socket.send", EPIPE))
        n = util::retry_eintr([&] {
          return ::send(fd, bytes.data() + sent, bytes.size() - sent,
                        MSG_NOSIGNAL);
        });
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  };

  while (!quit && !stopping_.load(std::memory_order_relaxed)) {
    // A signal (e.g. the profiler's SIGPROF, or SIGTERM racing shutdown)
    // interrupting the read must not drop a healthy connection —
    // retry_eintr absorbs it. An injected socket.read fault simulates the
    // hard-error path: this connection drops, the daemon keeps serving.
    ssize_t got = -1;
    if (!faults.maybe_errno("socket.read", EIO))
      got = util::retry_eintr([&] {
        return ::read(fd, chunk, sizeof(chunk));
      });
    if (got <= 0) break;  // EOF or hard error: drop the connection

    if (mode == Mode::kDetect) {
      if (static_cast<unsigned char>(chunk[0]) == wire::kFrameMagic) {
        if (!accept_binary_.load(std::memory_order_relaxed) ||
            !callbacks_.handle_frame) {
          (void)send_bytes(wire::encode_protocol_error(
              "binary protocol not enabled on this endpoint"));
          break;
        }
        mode = Mode::kBinary;
      } else {
        mode = Mode::kText;
      }
    }

    if (mode == Mode::kBinary) {
      reader.feed(chunk, static_cast<std::size_t>(got));
      wire::Frame frame;
      std::string error;
      wire::FrameReader::Status status = wire::FrameReader::Status::kNeedMore;
      while (!quit &&
             (status = reader.next(&frame, &error)) ==
                 wire::FrameReader::Status::kFrame) {
        if (!negotiated) {
          // The stream must open with a kHello we can version-match;
          // anything else is refused before any request is served.
          std::uint16_t version = 0;
          std::string hello_error;
          if (frame.type != wire::FrameType::kHello ||
              !wire::decode_hello_payload(frame.payload, &version,
                                          &hello_error)) {
            (void)send_bytes(wire::encode_protocol_error(
                "expected a hello frame to open the binary stream"));
            quit = true;
            break;
          }
          if (version != wire::kWireVersion) {
            (void)send_bytes(wire::encode_protocol_error(
                "unsupported wire version " + std::to_string(version)));
            quit = true;
            break;
          }
          if (!send_bytes(wire::encode_hello_ack())) { quit = true; break; }
          negotiated = true;
          continue;
        }
        if (frame.type != wire::FrameType::kRequest) {
          (void)send_bytes(wire::encode_protocol_error(
              "only request frames are valid after negotiation"));
          quit = true;
          break;
        }
        const std::string response = callbacks_.handle_frame(frame, &quit);
        if (!send_bytes(response)) { quit = true; break; }
        if (callbacks_.on_answered) callbacks_.on_answered();
      }
      if (!quit && status == wire::FrameReader::Status::kError) {
        // After a framing error there is no safe resync point in the
        // stream: report what broke and close.
        (void)send_bytes(wire::encode_protocol_error(error));
        break;
      }
      continue;
    }

    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t newline;
    while (!quit && (newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.size() > kMaxRequestLineBytes) {
        (void)send_bytes(format_line_too_long() + "\n");
        quit = true;
        break;
      }
      if (callbacks_.is_blank && callbacks_.is_blank(line)) continue;
      const std::string response = callbacks_.handle_line(line, &quit) + "\n";
      if (!send_bytes(response)) { quit = true; break; }
      if (callbacks_.on_answered) callbacks_.on_answered();
    }
    if (!quit && buffer.size() > kMaxRequestLineBytes) {
      // A partial line already over the cap can never become a valid
      // request — refuse now instead of buffering until the client stops.
      (void)send_bytes(format_line_too_long() + "\n");
      break;
    }
  }
  unregister_connection(fd);
  ::close(fd);
}

void SocketServer::register_connection(int fd) {
  util::MutexLock lock(conns_mu_);
  conn_fds_.insert(fd);
  // stop() may have run between accept() returning this fd and the insert
  // above — its shutdown() sweep iterated conn_fds_ without us, so the
  // handler would block in read() and wedge run()'s final join. The mutex
  // orders the two: either stop() saw our fd in its sweep, or we see
  // stopping_ here and shut the fd down ourselves.
  if (stopping_.load(std::memory_order_relaxed)) ::shutdown(fd, SHUT_RDWR);
}

void SocketServer::unregister_connection(int fd) {
  util::MutexLock lock(conns_mu_);
  conn_fds_.erase(fd);
}

void SocketServer::run(const std::string& path) {
  REBERT_CHECK_MSG(path.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long: " + path);
  // Only ever unlink something that is actually a socket: a path collision
  // with a regular file (a config, a checkpoint) must fail loudly, not
  // silently destroy the file.
  struct stat existing;
  if (::lstat(path.c_str(), &existing) == 0) {
    REBERT_CHECK_MSG(S_ISSOCK(existing.st_mode),
                     "refusing to serve on " + path +
                         ": path exists and is not a socket");
    ::unlink(path.c_str());
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  REBERT_CHECK_MSG(listener >= 0, "socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0) {
    const std::string reason = util::errno_string(errno);
    ::close(listener);
    REBERT_CHECK_MSG(false, "cannot listen on " + path + ": " + reason);
  }
  // Release-publish the listener: stop()'s acquire load then has a
  // happens-before edge back to the socket() call above.
  listen_fd_.store(listener, std::memory_order_release);
  // Belt and braces with the MSG_NOSIGNAL sends: nothing else in this
  // process wants SIGPIPE's default die-on-write either (a half-closed
  // stdio pipe would otherwise kill a daemon mid-reply).
  std::signal(SIGPIPE, SIG_IGN);
  LOG_INFO << "serve: listening on unix socket " << path;

  // One handler thread per live connection, bounded by max_connections.
  // Finished handlers flag `done` and are joined on the accept path, so a
  // long-lived daemon never accumulates dead threads.
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Handler> handlers;
  const auto reap = [&handlers] {
    for (auto it = handlers.begin(); it != handlers.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = handlers.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (!stopping_.load(std::memory_order_relaxed)) {
    // stop() closes the listener, so a retried accept fails fast instead
    // of blocking; EINTR alone must not end the accept loop.
    const int fd =
        util::retry_eintr([&] { return ::accept(listener, nullptr, nullptr); });
    if (fd < 0) break;  // listener closed by stop(), or hard error
    reap();
    if (max_connections_ > 0 &&
        static_cast<int>(handlers.size()) >= max_connections_) {
      // Shed at the door: one advisory line, then close — no handler
      // thread, no unbounded backlog. The owner counts the shed inside
      // overload_line(), before sending, so a client that saw the refusal
      // also sees it in stats.
      const std::string refusal =
          (callbacks_.overload_line ? callbacks_.overload_line()
                                    : std::string("err overloaded")) +
          "\n";
      (void)util::retry_eintr([&] {
        return ::send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
      });
      ::close(fd);
      continue;
    }
    register_connection(fd);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, fd, done] {
      handle_connection(fd);
      done->store(true, std::memory_order_release);
    });
    handlers.push_back({std::move(thread), std::move(done)});
  }
  for (Handler& handler : handlers) handler.thread.join();
  // The accept loop's own thread closes the listener — never stop(), which
  // only shutdown()s it. Closing cross-thread would race a blocked accept
  // on the descriptor number. The exchange is serialized with stop() under
  // conns_mu_, so a shutdown() can never land on an already-closed fd.
  {
    util::MutexLock lock(conns_mu_);
    const int open_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (open_fd >= 0) ::close(open_fd);
  }
  ::unlink(path.c_str());
  if (callbacks_.on_shutdown) callbacks_.on_shutdown();
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  util::MutexLock lock(conns_mu_);
  // shutdown() the listener — a blocked accept() returns immediately —
  // but never close() it from here: the run() thread owns the descriptor
  // and closes it after the accept loop exits, so accept can never race a
  // reused fd number. The mutex serializes this against run()'s
  // exchange-and-close, and the acquire load pairs with the release store
  // that published the listener.
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  // Unblock every handler parked in read(): a connection a client keeps
  // open but idle (connection pools do this by design) would otherwise
  // wedge run()'s final join forever. shutdown(), not close() — the
  // handler still owns the descriptor and closes it on its way out.
  for (const int conn : conn_fds_) ::shutdown(conn, SHUT_RDWR);
}

}  // namespace rebert::serve
