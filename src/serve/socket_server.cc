#include "serve/socket_server.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/fault_injector.h"
#include "runtime/thread_pool.h"
#include "serve/protocol.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_utils.h"
#include "wire/message.h"

namespace rebert::serve {

namespace {

// Hard ceiling on one connection's pending output. Per-connection dispatch
// is serialized (one in-flight request, one queued response), so the queue
// holds at most one response plus protocol chatter; the cap only guards
// against a future caller returning something pathological.
constexpr std::size_t kMaxWriteQueueBytes = 4u << 20;

constexpr int kMaxEpollEvents = 256;

/// Collapse an exception message to one response-safe line.
std::string error_single_line(const char* what) {
  std::string text = what == nullptr ? "dispatch failed" : what;
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

}  // namespace

// The per-run() epoll state machine. Everything here — the listener, the
// epoll set, every Conn — is owned and touched by the reactor thread
// only; the single cross-thread surface is the completion queue under
// `mu`, fed by dispatch-pool workers and drained on eventfd wakeups.
struct SocketServer::Reactor {
  enum class Mode { kDetect, kText, kBinary };

  struct Conn {
    int fd = -1;
    // Identity for completions: a dispatch in flight names its connection
    // by id, never fd, so a response finished after the connection died
    // (and the fd number was reused) is dropped instead of misdelivered.
    std::uint64_t id = 0;
    Mode mode = Mode::kDetect;
    bool negotiated = false;        // binary: kHello seen and acked
    bool shed = false;              // over the cap: refuse at first byte
    bool busy = false;              // a dispatch is in flight
    bool close_after_flush = false; // end the connection once out drains
    bool answered_pending = false;  // fire on_answered when out drains
    std::uint32_t interest = 0;     // events currently registered in epoll
    std::string in;                 // bytes read, not yet parsed
    wire::FrameReader reader;       // binary framing state
    std::string out;                // bounded write queue (partial sends)
    std::size_t out_off = 0;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::string bytes;
    bool close = false;     // dispatcher set *close_connection
    bool answered = false;  // counts for on_answered once flushed
  };

  explicit Reactor(SocketServer& server) : server_(server) {}

  SocketServer& server_;
  runtime::FaultInjector& faults_ = runtime::FaultInjector::global();
  int epoll_fd = -1;
  int listener = -1;

  std::unordered_map<int, Conn> conns;                  // keyed by fd
  std::unordered_map<std::uint64_t, int> fd_by_id;      // id -> live fd
  std::uint64_t next_id = 1;
  int live = 0;  // connections counted against max_connections (not shed)

  // The worker -> reactor handoff: completions append under `mu` and poke
  // the eventfd; the reactor swaps the vector out under `mu` and applies
  // it lock-free. `inflight` counts submitted-but-uncompleted dispatches
  // so shutdown can drain before tearing the engine's rug out.
  util::Mutex mu{"socket.completions"};
  std::vector<Completion> completions GUARDED_BY(mu);
  std::size_t inflight GUARDED_BY(mu) = 0;

  bool stopping() const {
    return server_.stopping_.load(std::memory_order_acquire);
  }

  void wake() {
    const std::uint64_t one = 1;
    // A full eventfd counter (never in practice) or EINTR: the pending
    // readable state already guarantees a wakeup.
    (void)!::write(server_.wake_fd_, &one, sizeof(one));
  }

  void drain_wake_fd() {
    std::uint64_t counter = 0;
    (void)!::read(server_.wake_fd_, &counter, sizeof(counter));
  }

  // ---- epoll bookkeeping ----------------------------------------------

  void watch(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    REBERT_CHECK_MSG(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0,
                     "epoll_ctl(ADD) failed: " + util::errno_string(errno));
  }

  /// Level-triggered interest for `conn`'s current state. Reads pause
  /// while a dispatch is in flight or output is pending — the kernel
  /// buffer is the backpressure, exactly like the blocked per-connection
  /// thread used to be.
  void update_interest(Conn& conn) {
    std::uint32_t desired = 0;
    if (!conn.out.empty()) desired |= EPOLLOUT;
    if (!conn.busy && conn.out.empty() && !conn.close_after_flush)
      desired |= EPOLLIN;
    if (desired == conn.interest) return;
    epoll_event ev{};
    ev.events = desired;
    ev.data.fd = conn.fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
      conn.interest = desired;
  }

  // ---- connection lifecycle -------------------------------------------

  void accept_ready() {
    for (;;) {
      const int fd = ::accept4(listener, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: drained; anything else: try again next tick
      }
      Conn conn;
      conn.fd = fd;
      conn.id = next_id++;
      // Over the cap: accept anyway, but park the connection until its
      // first byte tells us which encoding to refuse it in. A shed
      // connection never dispatches and never counts against the cap.
      conn.shed = server_.max_connections_ > 0 &&
                  live >= server_.max_connections_;
      if (!conn.shed) ++live;
      conn.interest = EPOLLIN;
      fd_by_id[conn.id] = fd;
      conns.emplace(fd, std::move(conn));
      watch(fd, EPOLLIN);
    }
  }

  void close_conn(Conn& conn) {
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    if (!conn.shed) --live;
    fd_by_id.erase(conn.id);
    conns.erase(conn.fd);  // invalidates `conn` — must be last
  }

  // ---- output ----------------------------------------------------------

  /// Queue response bytes. Returns false (caller must close_conn) when
  /// the write queue would exceed its bound.
  bool enqueue(Conn& conn, const std::string& bytes) {
    if (conn.out.size() - conn.out_off + bytes.size() > kMaxWriteQueueBytes)
      return false;
    conn.out.append(bytes);
    return true;
  }

  /// Push queued output to the kernel until done or EAGAIN. Returns false
  /// when the connection died under us (EPIPE, injected socket.send
  /// fault); the caller must close_conn.
  bool flush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      // The socket.send chaos site fires per write attempt, exactly where
      // the per-connection thread's send loop used to arm it.
      if (faults_.maybe_errno("socket.send", EPIPE)) return false;
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // EPIPE / ECONNRESET / peer gone
    }
    conn.out.clear();
    conn.out_off = 0;
    return true;
  }

  // ---- parsing & dispatch ----------------------------------------------

  /// Hand one text line to the dispatch pool. The connection stays busy —
  /// reads paused, no further parsing — until its completion comes back.
  void dispatch_line(Conn& conn, std::string line) {
    conn.busy = true;
    const std::uint64_t id = conn.id;
    {
      util::MutexLock lock(mu);
      ++inflight;
    }
    try {
      server_.pool_->submit([this, id, line = std::move(line)] {
        bool close = false;
        std::string response = server_.callbacks_.handle_line(line, &close);
        response += '\n';
        complete({id, std::move(response), close, /*answered=*/true});
      });
    } catch (const std::exception& e) {
      // The pool.submit chaos site trips here: the request still gets a
      // well-formed error answer instead of a dropped connection.
      complete({id, format_error(error_single_line(e.what())) + "\n",
                /*close=*/false, /*answered=*/true});
    }
  }

  void dispatch_frame(Conn& conn, wire::Frame frame) {
    conn.busy = true;
    const std::uint64_t id = conn.id;
    {
      util::MutexLock lock(mu);
      ++inflight;
    }
    try {
      server_.pool_->submit([this, id, frame = std::move(frame)] {
        bool close = false;
        std::string response = server_.callbacks_.handle_frame(frame, &close);
        complete({id, std::move(response), close, /*answered=*/true});
      });
    } catch (const std::exception& e) {
      complete({id,
                wire::encode_response(wire::error_response(
                    wire::Verb::kHelp, error_single_line(e.what()))),
                /*close=*/false, /*answered=*/true});
    }
  }

  void complete(Completion completion) {
    {
      util::MutexLock lock(mu);
      completions.push_back(std::move(completion));
      REBERT_CHECK_MSG(inflight > 0, "completion without a dispatch");
      --inflight;
    }
    wake();
  }

  /// Refuse a parked over-cap connection in its own encoding, now that
  /// its first byte told us which one that is.
  bool refuse_shed(Conn& conn) {
    const bool binary =
        static_cast<unsigned char>(conn.in[0]) == wire::kFrameMagic;
    std::string refusal;
    if (binary) {
      refusal = server_.callbacks_.overload_frame
                    ? server_.callbacks_.overload_frame()
                    : wire::encode_response(wire::overloaded_response(0));
    } else {
      refusal = (server_.callbacks_.overload_line
                     ? server_.callbacks_.overload_line()
                     : std::string("err overloaded")) +
                "\n";
    }
    conn.in.clear();
    conn.close_after_flush = true;
    return enqueue(conn, refusal);
  }

  /// Advance the connection's protocol state machine: detect the
  /// encoding, parse what `in` holds, enqueue protocol chatter inline,
  /// dispatch at most one request. Returns true when it made progress
  /// that may unblock another pump iteration.
  bool process_input(Conn& conn) {
    if (conn.busy || conn.close_after_flush || !conn.out.empty())
      return false;
    if (conn.in.empty() && conn.mode != Mode::kBinary) return false;

    if (conn.mode == Mode::kDetect) {
      if (conn.shed) return refuse_shed(conn) || true;
      if (static_cast<unsigned char>(conn.in[0]) == wire::kFrameMagic) {
        if (!server_.accept_binary_.load(std::memory_order_relaxed) ||
            !server_.callbacks_.handle_frame) {
          conn.close_after_flush = true;
          (void)enqueue(conn, wire::encode_protocol_error(
                                  "binary protocol not enabled on this "
                                  "endpoint"));
          return true;
        }
        conn.mode = Mode::kBinary;
      } else {
        conn.mode = Mode::kText;
      }
    }

    if (conn.mode == Mode::kBinary) return process_binary(conn);
    return process_text(conn);
  }

  bool process_text(Conn& conn) {
    bool progressed = false;
    std::size_t newline;
    while (!conn.busy && conn.out.empty() &&
           (newline = conn.in.find('\n')) != std::string::npos) {
      std::string line = conn.in.substr(0, newline);
      conn.in.erase(0, newline + 1);
      progressed = true;
      if (line.size() > kMaxRequestLineBytes) {
        conn.close_after_flush = true;
        (void)enqueue(conn, format_line_too_long() + "\n");
        return true;
      }
      if (server_.callbacks_.is_blank && server_.callbacks_.is_blank(line))
        continue;
      dispatch_line(conn, std::move(line));
      return true;
    }
    if (!conn.busy && conn.in.size() > kMaxRequestLineBytes) {
      // A partial line already over the cap can never become a valid
      // request — refuse now instead of buffering until the client stops.
      conn.close_after_flush = true;
      (void)enqueue(conn, format_line_too_long() + "\n");
      return true;
    }
    return progressed;
  }

  bool process_binary(Conn& conn) {
    if (!conn.in.empty()) {
      conn.reader.feed(conn.in.data(), conn.in.size());
      conn.in.clear();
    }
    bool progressed = false;
    wire::Frame frame;
    std::string error;
    while (!conn.busy && conn.out.empty() && !conn.close_after_flush) {
      const wire::FrameReader::Status status = conn.reader.next(&frame,
                                                                &error);
      if (status == wire::FrameReader::Status::kNeedMore) break;
      progressed = true;
      if (status == wire::FrameReader::Status::kError) {
        // After a framing error there is no safe resync point in the
        // stream: report what broke and close.
        conn.close_after_flush = true;
        (void)enqueue(conn, wire::encode_protocol_error(error));
        return true;
      }
      if (!conn.negotiated) {
        // The stream must open with a kHello we can version-match;
        // anything else is refused before any request is served.
        std::uint16_t version = 0;
        std::string hello_error;
        if (frame.type != wire::FrameType::kHello ||
            !wire::decode_hello_payload(frame.payload, &version,
                                        &hello_error)) {
          conn.close_after_flush = true;
          (void)enqueue(conn, wire::encode_protocol_error(
                                  "expected a hello frame to open the "
                                  "binary stream"));
          return true;
        }
        if (version != wire::kWireVersion) {
          conn.close_after_flush = true;
          (void)enqueue(conn,
                        wire::encode_protocol_error(
                            "unsupported wire version " +
                            std::to_string(version)));
          return true;
        }
        conn.negotiated = true;
        (void)enqueue(conn, wire::encode_hello_ack());
        return true;
      }
      if (frame.type != wire::FrameType::kRequest) {
        conn.close_after_flush = true;
        (void)enqueue(conn, wire::encode_protocol_error(
                                "only request frames are valid after "
                                "negotiation"));
        return true;
      }
      dispatch_frame(conn, std::move(frame));
      return true;
    }
    return progressed;
  }

  /// Drive one connection as far as it can go right now: flush pending
  /// output, fire on_answered / close-after-flush once drained, parse and
  /// dispatch the next request, repeat until blocked. The one entry point
  /// every readiness event and completion funnels through.
  void pump(int fd) {
    for (;;) {
      auto it = conns.find(fd);
      if (it == conns.end()) return;
      Conn& conn = it->second;
      if (!flush(conn)) {
        close_conn(conn);
        return;
      }
      if (!conn.out.empty()) break;  // kernel buffer full: wait EPOLLOUT
      if (conn.answered_pending) {
        conn.answered_pending = false;
        if (server_.callbacks_.on_answered) server_.callbacks_.on_answered();
        continue;  // on_answered may take time; re-find defensively
      }
      if (conn.close_after_flush) {
        close_conn(conn);
        return;
      }
      if (conn.busy) break;
      if (!process_input(conn)) break;
    }
    auto it = conns.find(fd);
    if (it != conns.end()) update_interest(it->second);
  }

  void conn_readable(Conn& conn) {
    // The socket.read chaos site simulates the hard-error path: this
    // connection drops, the daemon keeps serving.
    if (faults_.maybe_errno("socket.read", EIO)) {
      close_conn(conn);
      return;
    }
    char chunk[4096];
    const ssize_t got = ::read(conn.fd, chunk, sizeof(chunk));
    if (got > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(got));
      pump(conn.fd);
      return;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR))
      return;  // level-triggered epoll redelivers
    close_conn(conn);  // EOF or hard error: drop the connection
  }

  void apply_completions() {
    std::vector<Completion> batch;
    {
      util::MutexLock lock(mu);
      batch.swap(completions);
    }
    for (Completion& completion : batch) {
      const auto fd_it = fd_by_id.find(completion.conn_id);
      if (fd_it == fd_by_id.end()) continue;  // connection died meanwhile
      Conn& conn = conns.at(fd_it->second);
      conn.busy = false;
      conn.answered_pending = completion.answered;
      if (completion.close) conn.close_after_flush = true;
      if (!enqueue(conn, completion.bytes)) {
        close_conn(conn);
        continue;
      }
      pump(fd_it->second);
    }
  }

  std::size_t inflight_now() {
    util::MutexLock lock(mu);
    return inflight;
  }

  // ---- the loop --------------------------------------------------------

  void loop() {
    epoll_event events[kMaxEpollEvents];
    while (!stopping()) {
      const int n = ::epoll_wait(epoll_fd, events, kMaxEpollEvents, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      bool accept_pending = false;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == server_.wake_fd_) {
          drain_wake_fd();
          continue;
        }
        if (fd == listener) {
          // Accepts run after every close in this batch has been
          // processed, so a descriptor number freed here can never be
          // confused with a stale event earlier in the same batch.
          accept_pending = true;
          continue;
        }
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;  // closed earlier in this batch
        Conn& conn = it->second;
        const std::uint32_t got = events[i].events;
        if ((got & (EPOLLHUP | EPOLLERR)) != 0 && (got & EPOLLIN) == 0) {
          // Peer gone with nothing left to read. Also the only signal a
          // busy connection (interest 0) can receive — without this, a
          // level-triggered HUP would spin the reactor.
          close_conn(conn);
          continue;
        }
        if ((got & EPOLLIN) != 0 && (conn.interest & EPOLLIN) != 0) {
          conn_readable(conn);
          if (conns.find(fd) == conns.end()) continue;
        }
        if ((got & EPOLLOUT) != 0) pump(fd);
      }
      apply_completions();
      if (accept_pending && !stopping()) accept_ready();
    }
    shutdown_drain();
  }

  /// stop()'s no-wedge ordering: close the door, let in-flight dispatches
  /// finish (their responses flushed best-effort — one non-blocking
  /// attempt, never a wait on a slow peer), then close every connection.
  void shutdown_drain() {
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listener, nullptr);
    // Stop watching connections: during the drain only completions
    // matter, and a readable-but-ignored connection would busy-spin a
    // level-triggered loop.
    for (auto& [fd, conn] : conns)
      (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    for (;;) {
      apply_completions();
      if (inflight_now() == 0) break;
      epoll_event events[8];
      const int n = ::epoll_wait(epoll_fd, events, 8, 50);
      for (int i = 0; i < n; ++i)
        if (events[i].data.fd == server_.wake_fd_) drain_wake_fd();
    }
    apply_completions();
    while (!conns.empty()) close_conn(conns.begin()->second);
  }
};

SocketServer::SocketServer(Callbacks callbacks)
    : callbacks_(std::move(callbacks)) {
  REBERT_CHECK_MSG(static_cast<bool>(callbacks_.handle_line),
                   "SocketServer needs a handle_line callback");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  REBERT_CHECK_MSG(wake_fd_ >= 0, "eventfd() failed");
}

SocketServer::~SocketServer() {
  // Pool first: a worker completing during teardown pokes wake_fd_, which
  // must still be a live descriptor (never a reused number).
  pool_.reset();
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void SocketServer::run(const std::string& path) {
  REBERT_CHECK_MSG(path.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long: " + path);
  // Only ever unlink something that is actually a socket: a path collision
  // with a regular file (a config, a checkpoint) must fail loudly, not
  // silently destroy the file.
  struct stat existing;
  if (::lstat(path.c_str(), &existing) == 0) {
    REBERT_CHECK_MSG(S_ISSOCK(existing.st_mode),
                     "refusing to serve on " + path +
                         ": path exists and is not a socket");
    ::unlink(path.c_str());
  }
  const int listener =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  REBERT_CHECK_MSG(listener >= 0, "socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int backlog = listen_backlog_ > 0 ? listen_backlog_ : SOMAXCONN;
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, backlog) != 0) {
    const std::string reason = util::errno_string(errno);
    ::close(listener);
    REBERT_CHECK_MSG(false, "cannot listen on " + path + ": " + reason);
  }
  // Belt and braces with the MSG_NOSIGNAL sends: nothing else in this
  // process wants SIGPIPE's default die-on-write either (a half-closed
  // stdio pipe would otherwise kill a daemon mid-reply).
  std::signal(SIGPIPE, SIG_IGN);

  if (!pool_) {
    const int threads =
        dispatch_threads_ > 0 ? dispatch_threads_ : kDefaultDispatchThreads;
    pool_ = std::make_unique<runtime::ThreadPool>(threads);
  }

  Reactor reactor(*this);
  reactor.listener = listener;
  reactor.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (reactor.epoll_fd < 0) {
    const std::string reason = util::errno_string(errno);
    ::close(listener);
    REBERT_CHECK_MSG(false, "epoll_create1 failed: " + reason);
  }
  reactor.watch(wake_fd_, EPOLLIN);
  reactor.watch(listener, EPOLLIN);
  LOG_INFO << "serve: listening on unix socket " << path
           << " (reactor, backlog " << backlog << ")";

  reactor.loop();

  ::close(listener);
  ::close(reactor.epoll_fd);
  ::unlink(path.c_str());
  if (callbacks_.on_shutdown) callbacks_.on_shutdown();
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

}  // namespace rebert::serve
