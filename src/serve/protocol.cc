#include "serve/protocol.h"

#include <limits>
#include <vector>

#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::serve {

namespace {

Request invalid(std::string message) {
  Request request;
  request.type = RequestType::kInvalid;
  request.error = std::move(message);
  return request;
}

/// Echoing attacker-controlled request text back must not let a multi-MB
/// line or embedded control bytes reach the response: cap the length and
/// replace non-printables so the reply stays one short, clean line.
std::string sanitize_token(const std::string& token) {
  constexpr std::size_t kMaxEcho = 48;
  std::string safe;
  safe.reserve(std::min(token.size(), kMaxEcho));
  for (char c : token) {
    if (safe.size() >= kMaxEcho) {
      safe += "...";
      break;
    }
    safe += (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return safe;
}

/// Strip trailing `deadline_ms=<n>` / `model=<m>` tokens (any order, at
/// most one each). Returns false (with *error set) when such a token is
/// present but malformed.
bool take_options(std::vector<std::string>* tokens, Request* request,
                  std::string* error) {
  request->deadline_ms = 0;
  request->model.clear();
  bool saw_deadline = false;
  bool saw_model = false;
  while (!tokens->empty()) {
    const std::string& last = tokens->back();
    if (util::starts_with(last, "deadline_ms=")) {
      int value = 0;
      if (saw_deadline || !util::parse_int(last.substr(12), &value) ||
          value < 0) {
        *error = "bad deadline_ms in '" + sanitize_token(last) + "'";
        return false;
      }
      request->deadline_ms = value;
      saw_deadline = true;
    } else if (util::starts_with(last, "model=")) {
      const std::string name = last.substr(6);
      if (saw_model || name.empty()) {
        *error = "bad model in '" + sanitize_token(last) + "'";
        return false;
      }
      request->model = name;
      saw_model = true;
    } else {
      break;
    }
    tokens->pop_back();
  }
  return true;
}

}  // namespace

Request parse_request(const std::string& line) {
  const std::string trimmed = util::trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return invalid("");

  std::vector<std::string> tokens = util::split_ws(trimmed);
  const std::string verb = tokens[0];
  Request request;
  std::string options_error;
  if (!take_options(&tokens, &request, &options_error))
    return invalid(options_error);
  if (verb == "score") {
    if (tokens.size() != 4)
      return invalid(
          "usage: score <bench> <bitA> <bitB> [model=<m>] [deadline_ms=<n>]");
    request.type = RequestType::kScore;
    request.bench = tokens[1];
    request.bit_a = tokens[2];
    request.bit_b = tokens[3];
  } else if (verb == "recover") {
    if (tokens.size() != 2)
      return invalid("usage: recover <bench> [model=<m>] [deadline_ms=<n>]");
    request.type = RequestType::kRecover;
    request.bench = tokens[1];
  } else if (verb == "stats") {
    if (tokens.size() != 1) return invalid("usage: stats");
    request.type = RequestType::kStats;
  } else if (verb == "health") {
    if (tokens.size() != 1) return invalid("usage: health");
    request.type = RequestType::kHealth;
  } else if (verb == "help") {
    request.type = RequestType::kHelp;
  } else if (verb == "quit" || verb == "exit") {
    request.type = RequestType::kQuit;
  } else {
    return invalid("unknown request '" + sanitize_token(verb) +
                   "' (try: help)");
  }
  return request;
}

bool is_blank_request(const Request& request) {
  return request.type == RequestType::kInvalid && request.error.empty();
}

std::string format_ok(const std::string& payload) {
  return payload.empty() ? "ok" : "ok " + payload;
}

std::string format_error(const std::string& message) {
  return "err " + message;
}

std::string format_overloaded(int retry_after_ms) {
  return "err overloaded retry_after_ms=" + std::to_string(retry_after_ms);
}

int parse_retry_after_ms(const std::string& response) {
  const std::string needle = "retry_after_ms=";
  const std::size_t at = response.find(needle);
  if (at == std::string::npos) return -1;
  std::size_t end = at + needle.size();
  while (end < response.size() && response[end] >= '0' &&
         response[end] <= '9')
    ++end;
  int value = 0;
  if (!util::parse_int(response.substr(at + needle.size(),
                                       end - at - needle.size()),
                       &value))
    return -1;
  return value;
}

std::string help_text() {
  return "commands: score <bench> <bitA> <bitB> [model=<m>] "
         "[deadline_ms=<n>] | recover <bench> [model=<m>] "
         "[deadline_ms=<n>] | stats | health | help | quit; "
         "<bench> = b03..b18 or a .bench file path";
}

std::string format_line_too_long() {
  return format_error("request line exceeds " +
                      std::to_string(kMaxRequestLineBytes) + " bytes");
}

wire::Request to_wire(const Request& request) {
  wire::Request out;
  switch (request.type) {
    case RequestType::kScore:
      out.verb = wire::Verb::kScore;
      break;
    case RequestType::kRecover:
      out.verb = wire::Verb::kRecover;
      break;
    case RequestType::kStats:
      out.verb = wire::Verb::kStats;
      break;
    case RequestType::kHealth:
      out.verb = wire::Verb::kHealth;
      break;
    case RequestType::kHelp:
      out.verb = wire::Verb::kHelp;
      break;
    case RequestType::kQuit:
      out.verb = wire::Verb::kQuit;
      break;
    case RequestType::kInvalid:
      REBERT_CHECK_MSG(false,
                       "an invalid request has no wire encoding: " +
                           request.error);
  }
  out.bench = request.bench;
  out.bit_a = request.bit_a;
  out.bit_b = request.bit_b;
  out.model = request.model;
  out.deadline_ms = static_cast<std::uint32_t>(request.deadline_ms);
  return out;
}

Request from_wire(const wire::Request& request) {
  Request out;
  switch (request.verb) {
    case wire::Verb::kScore:
      out.type = RequestType::kScore;
      break;
    case wire::Verb::kRecover:
      out.type = RequestType::kRecover;
      break;
    case wire::Verb::kStats:
      out.type = RequestType::kStats;
      break;
    case wire::Verb::kHealth:
      out.type = RequestType::kHealth;
      break;
    case wire::Verb::kHelp:
      out.type = RequestType::kHelp;
      break;
    case wire::Verb::kQuit:
      out.type = RequestType::kQuit;
      break;
  }
  out.bench = request.bench;
  out.bit_a = request.bit_a;
  out.bit_b = request.bit_b;
  out.model = request.model;
  // An attacker-chosen u32 must not wrap negative through the int field —
  // a clamped deadline only expires sooner.
  out.deadline_ms = request.deadline_ms >
                            static_cast<std::uint32_t>(
                                std::numeric_limits<int>::max())
                        ? std::numeric_limits<int>::max()
                        : static_cast<int>(request.deadline_ms);
  return out;
}

}  // namespace rebert::serve
