#include "serve/protocol.h"

#include "util/string_utils.h"

namespace rebert::serve {

namespace {

Request invalid(std::string message) {
  Request request;
  request.type = RequestType::kInvalid;
  request.error = std::move(message);
  return request;
}

}  // namespace

Request parse_request(const std::string& line) {
  const std::string trimmed = util::trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return invalid("");

  const std::vector<std::string> tokens = util::split_ws(trimmed);
  const std::string& verb = tokens[0];
  Request request;
  if (verb == "score") {
    if (tokens.size() != 4)
      return invalid("usage: score <bench> <bitA> <bitB>");
    request.type = RequestType::kScore;
    request.bench = tokens[1];
    request.bit_a = tokens[2];
    request.bit_b = tokens[3];
  } else if (verb == "recover") {
    if (tokens.size() != 2) return invalid("usage: recover <bench>");
    request.type = RequestType::kRecover;
    request.bench = tokens[1];
  } else if (verb == "stats") {
    if (tokens.size() != 1) return invalid("usage: stats");
    request.type = RequestType::kStats;
  } else if (verb == "help") {
    request.type = RequestType::kHelp;
  } else if (verb == "quit" || verb == "exit") {
    request.type = RequestType::kQuit;
  } else {
    return invalid("unknown request '" + verb + "' (try: help)");
  }
  return request;
}

bool is_blank_request(const Request& request) {
  return request.type == RequestType::kInvalid && request.error.empty();
}

std::string format_ok(const std::string& payload) {
  return payload.empty() ? "ok" : "ok " + payload;
}

std::string format_error(const std::string& message) {
  return "err " + message;
}

std::string help_text() {
  return "commands: score <bench> <bitA> <bitB> | recover <bench> | "
         "stats | help | quit; <bench> = b03..b18 or a .bench file path";
}

}  // namespace rebert::serve
