#include "serve/client_pool.h"

#include <utility>

namespace rebert::serve {

ClientPool::Lease::Lease(ClientPool* pool, std::unique_ptr<Client> client)
    : pool_(pool), client_(std::move(client)) {
  if (client_) retries_at_acquire_ = client_->retries();
}

ClientPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_),
      client_(std::move(other.client_)),
      retries_at_acquire_(other.retries_at_acquire_) {
  other.pool_ = nullptr;
}

ClientPool::Lease& ClientPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    client_ = std::move(other.client_);
    retries_at_acquire_ = other.retries_at_acquire_;
    other.pool_ = nullptr;
  }
  return *this;
}

ClientPool::Lease::~Lease() { release(); }

void ClientPool::Lease::release() {
  if (pool_ == nullptr || client_ == nullptr) {
    pool_ = nullptr;
    client_.reset();
    return;
  }
  const std::uint64_t new_retries = client_->retries() - retries_at_acquire_;
  if (client_->connected()) {
    pool_->give_back(std::move(client_), new_retries);
  } else {
    pool_->count_discard(new_retries);
    client_.reset();
  }
  pool_ = nullptr;
}

void ClientPool::Lease::discard() {
  if (pool_ != nullptr && client_ != nullptr) {
    pool_->count_discard(client_->retries() - retries_at_acquire_);
    client_.reset();
  }
  pool_ = nullptr;
  client_.reset();
}

ClientPool::ClientPool(std::string socket_path, ClientOptions options,
                       std::size_t max_idle)
    : path_(std::move(socket_path)), options_(options), max_idle_(max_idle) {}

ClientPool::Lease ClientPool::acquire() {
  {
    util::MutexLock lock(mu_);
    if (!idle_.empty()) {
      std::unique_ptr<Client> client = std::move(idle_.back());
      idle_.pop_back();
      ++reused_;
      return Lease(this, std::move(client));
    }
  }
  return acquire_fresh();
}

ClientPool::Lease ClientPool::acquire_fresh() {
  auto client = std::make_unique<Client>(path_, options_);
  if (!client->connect()) return Lease();
  {
    util::MutexLock lock(mu_);
    ++created_;
  }
  return Lease(this, std::move(client));
}

void ClientPool::clear_idle() {
  util::MutexLock lock(mu_);
  idle_.clear();
}

void ClientPool::give_back(std::unique_ptr<Client> client,
                           std::uint64_t new_retries) {
  util::MutexLock lock(mu_);
  retries_ += new_retries;
  if (idle_.size() < max_idle_)
    idle_.push_back(std::move(client));
  // else: over the idle bound — the unique_ptr closes the socket here.
}

void ClientPool::count_discard(std::uint64_t new_retries) {
  util::MutexLock lock(mu_);
  retries_ += new_retries;
  ++discarded_;
}

std::size_t ClientPool::idle() const {
  util::MutexLock lock(mu_);
  return idle_.size();
}

std::uint64_t ClientPool::created() const {
  util::MutexLock lock(mu_);
  return created_;
}

std::uint64_t ClientPool::reused() const {
  util::MutexLock lock(mu_);
  return reused_;
}

std::uint64_t ClientPool::discarded() const {
  util::MutexLock lock(mu_);
  return discarded_;
}

std::uint64_t ClientPool::retries() const {
  util::MutexLock lock(mu_);
  return retries_;
}

}  // namespace rebert::serve
