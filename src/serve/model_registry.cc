#include "serve/model_registry.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace rebert::serve {
namespace {

// `max_bits=<n>` with n >= 1; anything else is a manifest error.
int parse_max_bits(const std::string& token, const std::string& where) {
  const std::string prefix = "max_bits=";
  REBERT_CHECK_MSG(token.rfind(prefix, 0) == 0,
                   where + ": unknown token '" + token + "'");
  const std::string digits = token.substr(prefix.size());
  REBERT_CHECK_MSG(!digits.empty() &&
                       digits.find_first_not_of("0123456789") ==
                           std::string::npos,
                   where + ": bad max_bits '" + token + "'");
  const int value = std::stoi(digits);
  REBERT_CHECK_MSG(value >= 1, where + ": max_bits must be >= 1");
  return value;
}

}  // namespace

ModelManifest parse_model_manifest_text(const std::string& text,
                                        const std::string& origin) {
  ModelManifest manifest;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::string where =
        origin + ":" + std::to_string(line_no);
    std::istringstream fields(line);
    std::string verb;
    if (!(fields >> verb) || verb[0] == '#') continue;
    if (verb == "model") {
      ModelSpec spec;
      REBERT_CHECK_MSG(static_cast<bool>(fields >> spec.name >> spec.path),
                       where + ": expected 'model <name> <path> [max_bits=<n>]'");
      std::string extra;
      if (fields >> extra) spec.max_bits = parse_max_bits(extra, where);
      REBERT_CHECK_MSG(!(fields >> extra),
                       where + ": trailing token '" + extra + "'");
      for (const ModelSpec& existing : manifest.models)
        REBERT_CHECK_MSG(existing.name != spec.name,
                         where + ": duplicate model '" + spec.name + "'");
      manifest.models.push_back(std::move(spec));
    } else if (verb == "default") {
      REBERT_CHECK_MSG(static_cast<bool>(fields >> manifest.default_model),
                       where + ": expected 'default <name>'");
    } else {
      REBERT_CHECK_MSG(false, where + ": unknown directive '" + verb + "'");
    }
  }
  REBERT_CHECK_MSG(!manifest.models.empty(),
                   origin + ": manifest declares no models");
  if (manifest.default_model.empty()) {
    manifest.default_model = manifest.models.front().name;
  } else {
    bool known = false;
    for (const ModelSpec& spec : manifest.models)
      known = known || spec.name == manifest.default_model;
    REBERT_CHECK_MSG(known, origin + ": default names unknown model '" +
                                manifest.default_model + "'");
  }
  return manifest;
}

ModelManifest parse_model_manifest(const std::string& path) {
  std::ifstream in(path);
  REBERT_CHECK_MSG(in.good(), "cannot read model manifest: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_model_manifest_text(text.str(), path);
}

ModelRegistry::ModelRegistry(const ModelManifest& manifest,
                             const bert::BertConfig& config,
                             core::ShardedPredictionCache* default_cache,
                             int cache_shards) {
  for (std::size_t i = 0; i < manifest.models.size(); ++i) {
    const ModelSpec& spec = manifest.models[i];
    auto entry = std::make_unique<Entry>();
    entry->spec = spec;
    entry->model = std::make_unique<bert::BertPairClassifier>(config);
    if (spec.path != "-") {
      try {
        entry->model->load(spec.path);
      } catch (const std::exception& error) {
        // A bad checkpoint must not stop the daemon from serving the good
        // ones: keep the entry so `health`/`stats` can report it, but
        // never route to it.
        LOG_WARN << "model '" << spec.name << "': failed to load "
                 << spec.path << " (" << error.what()
                 << "); marking unhealthy";
        entry->load_ok = false;
        entry->healthy.store(false, std::memory_order_relaxed);
      }
    }
    if (spec.name == manifest.default_model) {
      default_index_ = entries_.size();
      entry->cache = default_cache;
    } else {
      entry->owned_cache =
          std::make_unique<core::ShardedPredictionCache>(cache_shards);
      entry->cache = entry->owned_cache.get();
    }
    entries_.push_back(std::move(entry));
  }
}

ModelRegistry::Entry* ModelRegistry::find(const std::string& name) {
  for (auto& entry : entries_)
    if (entry->spec.name == name) return entry.get();
  return nullptr;
}

ModelRegistry::Entry& ModelRegistry::select(const std::string& name,
                                            int num_bits) {
  if (!name.empty()) {
    Entry* entry = find(name);
    REBERT_CHECK_MSG(entry != nullptr, "unknown model '" + name + "'");
    return *entry;
  }
  // Size rule: tightest healthy bound that still covers the bench; bigger
  // than every bound (or nothing bounded/healthy) falls to the default.
  Entry* best = nullptr;
  int best_bound = std::numeric_limits<int>::max();
  for (auto& entry : entries_) {
    if (entry->spec.max_bits <= 0) continue;  // unbounded: never size-picked
    if (entry->spec.max_bits < num_bits) continue;
    if (!entry->healthy.load(std::memory_order_relaxed)) continue;
    if (entry->spec.max_bits < best_bound) {
      best = entry.get();
      best_bound = entry->spec.max_bits;
    }
  }
  return best != nullptr ? *best : default_entry();
}

int ModelRegistry::unhealthy_count() const {
  int count = 0;
  for (const auto& entry : entries_)
    if (!entry->healthy.load(std::memory_order_relaxed)) ++count;
  return count;
}

}  // namespace rebert::serve
