// Newline-delimited request/response protocol of the serving runtime.
//
// Requests (one per line, whitespace-tokenized):
//   score <bench> <bitA> <bitB> [model=<m>] [deadline_ms=<n>]
//                                 P(same word) for two bits of a benchmark
//   recover <bench> [model=<m>] [deadline_ms=<n>]
//                                 full word recovery, summary line back
//   stats                         engine / cache / request counters
//   health                        ready | degraded | overloaded + gauges
//   help                          protocol summary
//   quit                          close the connection (stdio: end the loop)
//
// Responses (one per request, in order):
//   ok [<payload>]                success; payload is request-specific
//   err <message>                 parse or execution failure
//
// Distinguished error payloads (machine-parseable prefixes):
//   err overloaded retry_after_ms=<n>   admission control shed the request;
//                                       retry after the advisory delay
//   err deadline_exceeded               the request's deadline_ms elapsed
//                                       before the result was ready
//
// A recover that had to fall back to the structural baseline (model
// failure, numerics tripwire) succeeds with `degraded=structural` appended
// to its payload.
//
// `model=<m>` names a registry entry (see model_registry.h) when the
// engine serves several snapshots; omitted, the engine's size-based
// routing rule picks one. The trailing key=value fields may appear in
// either order.
//
// <bench> is either a generated-suite name ("b03".."b18", circuitgen
// scale set by the engine) or a path to a .bench netlist file. Responses
// never contain newlines, so the protocol stays trivially framable over
// both stdio and a Unix socket.
// The same protocol also has a binary encoding (wire/message.h),
// negotiated per connection by a magic first byte (wire/frame.h); the
// text form stays the default for humans and old clients. to_wire /
// from_wire below map between the two request representations so both
// transports share one dispatcher.
#pragma once

#include <cstddef>
#include <string>

#include "wire/message.h"

namespace rebert::serve {

/// Upper bound on one text-protocol request line. Valid requests are a
/// few hundred bytes at most; a longer line is a hostile or broken client
/// and is answered with a protocol error instead of growing the read
/// buffer unboundedly (socket connections are additionally closed).
inline constexpr std::size_t kMaxRequestLineBytes = 8192;

enum class RequestType {
  kScore,
  kRecover,
  kStats,
  kHealth,
  kHelp,
  kQuit,
  kInvalid,
};

struct Request {
  RequestType type = RequestType::kInvalid;
  std::string bench;   // score / recover
  std::string bit_a;   // score
  std::string bit_b;   // score
  std::string model;   // score / recover: registry entry; "" = size rule
  int deadline_ms = 0; // score / recover: 0 = caller imposes no deadline
  std::string error;   // kInvalid: human-readable parse diagnosis
};

/// Parse one request line. Never throws; malformed input yields kInvalid
/// with `error` set. Blank/comment ('#') lines also come back kInvalid
/// with an empty error — callers should skip those silently.
Request parse_request(const std::string& line);

/// True for lines the loop should skip without responding (blank, comment).
bool is_blank_request(const Request& request);

std::string format_ok(const std::string& payload);
std::string format_error(const std::string& message);

/// The shed response: `err overloaded retry_after_ms=<n>`.
std::string format_overloaded(int retry_after_ms);

/// Extract retry_after_ms from a shed response; -1 when absent/malformed.
int parse_retry_after_ms(const std::string& response);

/// The `help` response payload (single line).
std::string help_text();

/// The refusal for an over-length request line (format_error payload
/// included), shared by every transport that enforces the cap.
std::string format_line_too_long();

/// Map a parsed text request onto the binary wire representation.
/// Requires an encodable request — kInvalid trips a util::CheckError
/// (callers answer parse failures before encoding).
wire::Request to_wire(const Request& request);

/// Map a decoded wire request back onto the dispatcher's Request.
Request from_wire(const wire::Request& request);

}  // namespace rebert::serve
