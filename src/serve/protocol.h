// Newline-delimited request/response protocol of the serving runtime.
//
// Requests (one per line, whitespace-tokenized):
//   score <bench> <bitA> <bitB>   P(same word) for two bits of a benchmark
//   recover <bench>               full word recovery, summary line back
//   stats                         engine / cache / request counters
//   help                          protocol summary
//   quit                          close the connection (stdio: end the loop)
//
// Responses (one per request, in order):
//   ok [<payload>]                success; payload is request-specific
//   err <message>                 parse or execution failure
//
// <bench> is either a generated-suite name ("b03".."b18", circuitgen
// scale set by the engine) or a path to a .bench netlist file. Responses
// never contain newlines, so the protocol stays trivially framable over
// both stdio and a Unix socket.
#pragma once

#include <string>

namespace rebert::serve {

enum class RequestType {
  kScore,
  kRecover,
  kStats,
  kHelp,
  kQuit,
  kInvalid,
};

struct Request {
  RequestType type = RequestType::kInvalid;
  std::string bench;   // score / recover
  std::string bit_a;   // score
  std::string bit_b;   // score
  std::string error;   // kInvalid: human-readable parse diagnosis
};

/// Parse one request line. Never throws; malformed input yields kInvalid
/// with `error` set. Blank/comment ('#') lines also come back kInvalid
/// with an empty error — callers should skip those silently.
Request parse_request(const std::string& line);

/// True for lines the loop should skip without responding (blank, comment).
bool is_blank_request(const Request& request);

std::string format_ok(const std::string& payload);
std::string format_error(const std::string& message);

/// The `help` response payload (single line).
std::string help_text();

}  // namespace rebert::serve
