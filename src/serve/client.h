// Client — the calling side of the serving protocol over a Unix socket.
//
// One Client wraps one connection: request() does a single round-trip;
// request_with_retry() additionally honours the server's admission control,
// backing off and retrying when the answer is `err overloaded
// retry_after_ms=<n>`. The backoff is capped exponential and fully
// deterministic — wait times are a function of the attempt number, the
// server's advisory delay, and (when enabled) a seeded jitter, never of
// wall-clock randomness — so a retrying workload replays identically
// (what the chaos tests and the overload bench rely on) while a fleet of
// differently-seeded clients still spreads its retries instead of
// thundering-herding a respawned backend (util/backoff.h).
//
// With ClientOptions.binary set, connect() additionally negotiates the
// binary wire protocol (hello / hello-ack, wire/frame.h) and request()
// transcodes each text line to a request frame and each response frame
// back to the exact text line the server would have sent — callers,
// including request_with_retry's backoff parser, never notice the
// encoding. Reconnecting after close() re-runs the negotiation from
// scratch: protocol state never outlives the connection it was agreed on.
#pragma once

#include <cstdint>
#include <string>

#include "wire/frame.h"

namespace rebert::serve {

struct ClientOptions {
  /// connect() polls until the server's socket accepts, at
  /// `connect_poll_ms` intervals, for at most `connect_attempts` tries —
  /// so a client may be launched before its daemon finishes binding.
  int connect_attempts = 200;
  int connect_poll_ms = 10;
  /// request_with_retry(): total send attempts per request (the first try
  /// plus up to max_attempts - 1 retries after overload responses).
  int max_attempts = 8;
  /// Backoff before retry k (1-based) is
  ///   min(max_backoff_ms, max(retry_after_ms, base_backoff_ms << (k-1)))
  /// where retry_after_ms is the server's advisory value from the shed
  /// response (0 when absent).
  int base_backoff_ms = 1;
  int max_backoff_ms = 64;
  /// Ceiling on the connection-door overload backoff: after a
  /// frame-encoded shed, connect() sleeps
  ///   min(max_connect_backoff_ms, max(retry_after_ms, connect_poll_ms))
  /// so the server's advisory delay is honoured but a buggy or hostile
  /// server advertising an hour cannot wedge the calling thread.
  int max_connect_backoff_ms = 2000;
  /// Speak the binary wire protocol. connect() fails (without burning the
  /// polling budget) when the server refuses the negotiation — a server
  /// that answers the hello at all answers it immediately.
  bool binary = false;
  /// Deterministic seeded jitter stretching every computed backoff (both
  /// the request retry backoff and the connection-door overload backoff)
  /// by up to this percentage. 0 (the default) keeps the historic
  /// bit-identical schedule; > 0 de-synchronizes a fleet of clients whose
  /// identical advisories would otherwise re-arrive as one thundering
  /// herd at a respawned backend. Jitter only ever adds delay, so the
  /// server's advisory is still honoured and caps still cap.
  int backoff_jitter_pct = 0;
  /// Seed identifying this waiter for jitter purposes. 0 auto-derives a
  /// per-client seed (socket-path hash mixed with a process-wide client
  /// counter) so simultaneous clients of one daemon spread out; set it
  /// explicitly for replayable chaos tests.
  std::uint64_t backoff_seed = 0;
};

class Client {
 public:
  explicit Client(std::string socket_path, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Establish the connection (idempotent). Returns false when the server
  /// never came up within the polling budget.
  bool connect();

  void close();
  bool connected() const { return fd_ >= 0; }

  /// One round-trip: send `line` (newline appended) and return the
  /// response line without its newline. Throws util::CheckError when the
  /// connection is gone (send failure or EOF mid-response).
  std::string request(const std::string& line);

  /// Round-trip that retries shed requests per ClientOptions. Returns the
  /// first non-overloaded response, or the final overloaded response when
  /// every attempt was shed (the caller can tell via
  /// parse_retry_after_ms >= 0).
  std::string request_with_retry(const std::string& line);

  /// Binary connections only: send pre-encoded frame bytes verbatim and
  /// return the next frame off the stream — the relay primitive the router
  /// uses to forward without re-encoding (Frame.raw round-trips the exact
  /// on-stream bytes). Throws util::CheckError on send failure, EOF, or a
  /// framing error in the response.
  wire::Frame request_frame(const std::string& frame_bytes);

  /// True once connect() succeeded with options.binary and the hello
  /// handshake was acknowledged.
  bool negotiated_binary() const { return negotiated_; }

  /// Overload retries performed across the client's lifetime.
  std::uint64_t retries() const { return retries_; }

  /// The server's advisory delay from the most recent connection-level
  /// overload refusal (a frame-encoded shed at the max_connections door),
  /// or -1 when no such refusal has been seen. connect() backs off by
  /// this much (clamped to ClientOptions::max_connect_backoff_ms) before
  /// re-polling.
  int last_overload_retry_after_ms() const {
    return last_overload_retry_after_ms_;
  }

 private:
  /// How the server answered the hello: acknowledged, refused outright
  /// (wrong protocol, binary disabled — deterministic, stop polling), or
  /// shed at the connection door (overloaded — back off and re-poll).
  enum class Negotiation { kAck, kRefused, kOverloaded };

  std::string read_line();
  void send_all(const std::string& bytes);
  wire::Frame read_frame();
  Negotiation negotiate();

  std::string path_;
  ClientOptions options_;
  std::uint64_t jitter_seed_ = 0;      // resolved from options at ctor
  std::uint64_t jitter_sequence_ = 0;  // numbers every jittered wait
  int fd_ = -1;
  std::string buffer_;  // text mode: bytes beyond the last returned line
  wire::FrameReader reader_;  // binary mode: bytes beyond the last frame
  bool negotiated_ = false;
  std::uint64_t retries_ = 0;
  int last_overload_retry_after_ms_ = -1;
};

}  // namespace rebert::serve
