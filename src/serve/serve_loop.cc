#include "serve/serve_loop.h"

#include <exception>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "runtime/latch.h"
#include "serve/protocol.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace rebert::serve {

namespace {

std::string format_stats(const EngineStats& stats) {
  std::ostringstream out;
  out << "threads=" << stats.threads << " batch=" << stats.batch_size
      << " shards=" << stats.cache_shards
      << " score_requests=" << stats.score_requests
      << " recover_requests=" << stats.recover_requests
      << " cache_hits=" << stats.cache_hits
      << " cache_misses=" << stats.cache_misses
      << " cache_entries=" << stats.cache_entries
      << " warm_entries=" << stats.warm_entries
      << " benches=" << stats.benches_loaded
      << " shed_requests=" << stats.shed_requests
      << " deadline_exceeded=" << stats.deadline_exceeded
      << " degraded_recoveries=" << stats.degraded_recoveries
      << " faults_injected=" << stats.faults_injected
      << " uptime_seconds="
      << util::format_double(stats.uptime_seconds, 3)
      // Multi-model / per-bench fields come last: existing consumers match
      // on prefixes and substrings, so growth at the tail is compatible.
      << " models=" << stats.models
      << " unhealthy_models=" << stats.unhealthy_models
      << " bench_shed_requests=" << stats.bench_shed_requests
      << " kernels=" << stats.kernels;
  return out.str();
}

/// The `health` payload: one coarse status plus the gauges behind it.
/// `overloaded` reflects this instant's budget; `degraded` the last model
/// forward (or a registry entry that never loaded); `ready` otherwise.
std::string format_health(const EngineStats& stats) {
  const char* status = "ready";
  if (!stats.model_healthy || stats.unhealthy_models > 0) status = "degraded";
  if (stats.max_inflight > 0 && stats.inflight >= stats.max_inflight)
    status = "overloaded";
  std::ostringstream out;
  out << "status=" << status << " inflight=" << stats.inflight
      << " max_inflight=" << stats.max_inflight
      << " shed_requests=" << stats.shed_requests
      << " deadline_exceeded=" << stats.deadline_exceeded
      << " degraded_recoveries=" << stats.degraded_recoveries
      << " faults_injected=" << stats.faults_injected
      << " models=" << stats.models
      << " unhealthy_models=" << stats.unhealthy_models
      << " kernels=" << stats.kernels;
  return out.str();
}

std::string format_recover(const RecoverSummary& summary) {
  std::ostringstream out;
  out << "words=" << summary.num_words << " bits=" << summary.num_bits
      << " filtered=" << util::format_double(summary.filtered_fraction, 4)
      << " cache_hit_rate="
      << util::format_double(summary.cache_hit_rate, 4) << " seconds="
      << util::format_double(summary.seconds, 3);
  return out.str();
}

/// One line, no trailing newline: what a response must collapse to if an
/// engine error message happens to contain one.
std::string single_line(std::string text) {
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

/// The wire verb a response should echo for a request of this type.
/// kInvalid has no wire verb; kHelp is the harmless stand-in (the text
/// rendering of an error response does not show the verb anyway).
wire::Verb echo_verb(RequestType type) {
  switch (type) {
    case RequestType::kScore:   return wire::Verb::kScore;
    case RequestType::kRecover: return wire::Verb::kRecover;
    case RequestType::kStats:   return wire::Verb::kStats;
    case RequestType::kHealth:  return wire::Verb::kHealth;
    case RequestType::kQuit:    return wire::Verb::kQuit;
    case RequestType::kHelp:
    case RequestType::kInvalid: break;
  }
  return wire::Verb::kHelp;
}

}  // namespace

ServeLoop::ServeLoop(InferenceEngine& engine)
    : engine_(engine),
      socket_server_(SocketServer::Callbacks{
          /*handle_line=*/[this](const std::string& line, bool* quit) {
            return handle_line(line, quit);
          },
          /*is_blank=*/[](const std::string& line) {
            return is_blank_request(parse_request(line));
          },
          /*overload_line=*/[this] {
            // Count before sending, so a client that saw the refusal also
            // sees it in stats.
            engine_.record_shed();
            return format_overloaded(engine_.retry_after_ms());
          },
          /*on_answered=*/[this] { count_request_for_snapshot(); },
          /*on_shutdown=*/[this] { snapshot_cache(/*force=*/true); },
          /*handle_frame=*/[this](const wire::Frame& frame, bool* close) {
            return handle_frame(frame, close);
          },
          /*overload_frame=*/[this] {
            // The binary twin of overload_line: same shed accounting, same
            // advisory delay, encoded as a retryable response frame so the
            // client's FrameReader never sees text mid-stream.
            engine_.record_shed();
            return wire::encode_response(
                wire::overloaded_response(engine_.retry_after_ms()));
          }}) {}

void ServeLoop::enable_snapshots(std::string path, int every_n) {
  snapshot_path_ = std::move(path);
  snapshot_every_ = every_n;
}

void ServeLoop::snapshot_cache(bool force) {
  if (snapshot_path_.empty()) return;
  if (!snapshot_mu_.try_lock()) {
    // Another thread is mid-save. A cadence save can skip (the next one
    // covers it); a shutdown save must land, so wait our turn.
    if (!force) return;
    snapshot_mu_.lock();
  }
  // Both branches above join holding snapshot_mu_; everything that can
  // throw is caught before the unlock.
  try {
    engine_.save_cache(snapshot_path_);
    LOG_DEBUG << "serve: cache snapshot written to " << snapshot_path_;
  } catch (const std::exception& e) {
    LOG_WARN << "serve: cache snapshot to " << snapshot_path_
             << " failed: " << e.what();
  }
  snapshot_mu_.unlock();
}

void ServeLoop::count_request_for_snapshot() {
  if (snapshot_path_.empty() || snapshot_every_ < 1) return;
  const std::uint64_t n =
      answered_since_snapshot_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % static_cast<std::uint64_t>(snapshot_every_) == 0)
    snapshot_cache(/*force=*/false);
}

wire::Response ServeLoop::dispatch(const Request& request, bool* quit) {
  const wire::Verb verb = echo_verb(request.type);
  try {
    switch (request.type) {
      case RequestType::kScore:
      case RequestType::kRecover: {
        // Admission first: a shed request costs one atomic decline, not a
        // queued slot. The bench-aware overload also enforces the
        // per-bench budget. The RAII ticket frees the slot(s) however we
        // leave.
        InferenceEngine::Admission admission =
            engine_.try_admit(request.bench);
        if (!admission) {
          wire::Response shed =
              wire::overloaded_response(engine_.retry_after_ms());
          shed.verb = verb;
          return shed;
        }
        runtime::CancellationToken deadline;
        runtime::CancellationToken* cancel = nullptr;
        const int deadline_ms = request.deadline_ms > 0
                                    ? request.deadline_ms
                                    : default_deadline_ms_;
        if (deadline_ms > 0) {
          deadline.set_deadline_after_ms(deadline_ms);
          cancel = &deadline;
        }
        if (request.type == RequestType::kScore) {
          return wire::score_response(
              engine_.score(request.bench, request.bit_a, request.bit_b,
                            cancel, request.model));
        }
        const RecoverSummary summary =
            engine_.recover(request.bench, cancel, request.model);
        wire::Response response =
            wire::ok_response(verb, format_recover(summary));
        if (summary.degraded) response.flags |= wire::kFlagDegraded;
        return response;
      }
      case RequestType::kStats:
        return wire::ok_response(verb, format_stats(engine_.stats()));
      case RequestType::kHealth:
        return wire::ok_response(verb, format_health(engine_.stats()));
      case RequestType::kHelp:
        return wire::ok_response(verb, help_text());
      case RequestType::kQuit:
        if (quit) *quit = true;
        return wire::ok_response(verb, "bye");
      case RequestType::kInvalid:
        return wire::error_response(verb, request.error);
    }
    return wire::error_response(verb, "unreachable");
  } catch (const runtime::CancelledError&) {
    return wire::deadline_response(verb);
  } catch (const std::exception& e) {
    // Engine failures (unknown bench, parse error in a .bench file, an
    // unknown model name, ...) answer this request only; the daemon keeps
    // serving.
    return wire::error_response(verb, single_line(e.what()));
  }
}

std::string ServeLoop::handle_line(const std::string& line, bool* quit) {
  return wire::response_to_line(dispatch(parse_request(line), quit));
}

std::string ServeLoop::handle_frame(const wire::Frame& frame, bool* close) {
  wire::Request wire_request;
  std::string error;
  if (!wire::decode_request_payload(frame.payload, &wire_request, &error)) {
    // A well-framed but malformed message answers this request only; the
    // connection survives (framing corruption is SocketServer's to end).
    return wire::encode_response(
        wire::error_response(wire::Verb::kHelp, std::move(error)));
  }
  return wire::encode_response(dispatch(from_wire(wire_request), close));
}

std::size_t ServeLoop::run(std::istream& in, std::ostream& out) {
  std::size_t answered = 0;
  std::string line;
  bool quit = false;
  while (!quit && std::getline(in, line)) {
    if (line.size() > kMaxRequestLineBytes) {
      // Same cap as the socket transport; stdio keeps serving after the
      // refusal since the oversized line is already consumed.
      out << format_line_too_long() << '\n';
      out.flush();
      ++answered;
      continue;
    }
    if (is_blank_request(parse_request(line))) continue;
    out << handle_line(line, &quit) << '\n';
    out.flush();
    ++answered;
    count_request_for_snapshot();
  }
  snapshot_cache(/*force=*/true);
  return answered;
}

void ServeLoop::run_unix_socket(const std::string& path) {
  socket_server_.run(path);
}

}  // namespace rebert::serve
