#include "serve/serve_loop.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <exception>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/fault_injector.h"
#include "runtime/latch.h"
#include "serve/protocol.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/retry_eintr.h"
#include "util/string_utils.h"

namespace rebert::serve {

namespace {

std::string format_stats(const EngineStats& stats) {
  std::ostringstream out;
  out << "threads=" << stats.threads << " batch=" << stats.batch_size
      << " shards=" << stats.cache_shards
      << " score_requests=" << stats.score_requests
      << " recover_requests=" << stats.recover_requests
      << " cache_hits=" << stats.cache_hits
      << " cache_misses=" << stats.cache_misses
      << " cache_entries=" << stats.cache_entries
      << " warm_entries=" << stats.warm_entries
      << " benches=" << stats.benches_loaded
      << " shed_requests=" << stats.shed_requests
      << " deadline_exceeded=" << stats.deadline_exceeded
      << " degraded_recoveries=" << stats.degraded_recoveries
      << " faults_injected=" << stats.faults_injected
      << " uptime_seconds="
      << util::format_double(stats.uptime_seconds, 3);
  return out.str();
}

/// The `health` payload: one coarse status plus the gauges behind it.
/// `overloaded` reflects this instant's budget; `degraded` the last model
/// forward; `ready` otherwise.
std::string format_health(const EngineStats& stats) {
  const char* status = "ready";
  if (!stats.model_healthy) status = "degraded";
  if (stats.max_inflight > 0 && stats.inflight >= stats.max_inflight)
    status = "overloaded";
  std::ostringstream out;
  out << "status=" << status << " inflight=" << stats.inflight
      << " max_inflight=" << stats.max_inflight
      << " shed_requests=" << stats.shed_requests
      << " deadline_exceeded=" << stats.deadline_exceeded
      << " degraded_recoveries=" << stats.degraded_recoveries
      << " faults_injected=" << stats.faults_injected;
  return out.str();
}

std::string format_recover(const RecoverSummary& summary) {
  std::ostringstream out;
  out << "words=" << summary.num_words << " bits=" << summary.num_bits
      << " filtered=" << util::format_double(summary.filtered_fraction, 4)
      << " cache_hit_rate="
      << util::format_double(summary.cache_hit_rate, 4) << " seconds="
      << util::format_double(summary.seconds, 3);
  return out.str();
}

/// One line, no trailing newline: what a response must collapse to if an
/// engine error message happens to contain one.
std::string single_line(std::string text) {
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

}  // namespace

void ServeLoop::enable_snapshots(std::string path, int every_n) {
  snapshot_path_ = std::move(path);
  snapshot_every_ = every_n;
}

void ServeLoop::snapshot_cache(bool force) {
  if (snapshot_path_.empty()) return;
  std::unique_lock<std::mutex> lock(snapshot_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Another thread is mid-save. A cadence save can skip (the next one
    // covers it); a shutdown save must land, so wait our turn.
    if (!force) return;
    lock.lock();
  }
  try {
    engine_.save_cache(snapshot_path_);
    LOG_DEBUG << "serve: cache snapshot written to " << snapshot_path_;
  } catch (const std::exception& e) {
    LOG_WARN << "serve: cache snapshot to " << snapshot_path_
             << " failed: " << e.what();
  }
}

void ServeLoop::count_request_for_snapshot() {
  if (snapshot_path_.empty() || snapshot_every_ < 1) return;
  const std::uint64_t n =
      answered_since_snapshot_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % static_cast<std::uint64_t>(snapshot_every_) == 0)
    snapshot_cache(/*force=*/false);
}

std::string ServeLoop::handle_line(const std::string& line, bool* quit) {
  const Request request = parse_request(line);
  try {
    switch (request.type) {
      case RequestType::kScore:
      case RequestType::kRecover: {
        // Admission first: a shed request costs one atomic decline, not a
        // queued slot. The RAII ticket frees the slot however we leave.
        InferenceEngine::Admission admission = engine_.try_admit();
        if (!admission)
          return format_overloaded(engine_.retry_after_ms());
        runtime::CancellationToken deadline;
        runtime::CancellationToken* cancel = nullptr;
        const int deadline_ms = request.deadline_ms > 0
                                    ? request.deadline_ms
                                    : default_deadline_ms_;
        if (deadline_ms > 0) {
          deadline.set_deadline_after_ms(deadline_ms);
          cancel = &deadline;
        }
        if (request.type == RequestType::kScore) {
          return format_ok(util::format_double(
              engine_.score(request.bench, request.bit_a, request.bit_b,
                            cancel),
              6));
        }
        const RecoverSummary summary =
            engine_.recover(request.bench, cancel);
        std::string payload = format_recover(summary);
        if (summary.degraded) payload += " degraded=structural";
        return format_ok(payload);
      }
      case RequestType::kStats:
        return format_ok(format_stats(engine_.stats()));
      case RequestType::kHealth:
        return format_ok(format_health(engine_.stats()));
      case RequestType::kHelp:
        return format_ok(help_text());
      case RequestType::kQuit:
        if (quit) *quit = true;
        return format_ok("bye");
      case RequestType::kInvalid:
        return format_error(request.error);
    }
    return format_error("unreachable");
  } catch (const runtime::CancelledError&) {
    return format_error("deadline_exceeded");
  } catch (const std::exception& e) {
    // Engine failures (unknown bench, parse error in a .bench file, ...)
    // answer this request only; the daemon keeps serving.
    return format_error(single_line(e.what()));
  }
}

std::size_t ServeLoop::run(std::istream& in, std::ostream& out) {
  std::size_t answered = 0;
  std::string line;
  bool quit = false;
  while (!quit && std::getline(in, line)) {
    if (is_blank_request(parse_request(line))) continue;
    out << handle_line(line, &quit) << '\n';
    out.flush();
    ++answered;
    count_request_for_snapshot();
  }
  snapshot_cache(/*force=*/true);
  return answered;
}

void ServeLoop::handle_connection(int fd) {
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit && !stopping_.load(std::memory_order_relaxed)) {
    // A signal (e.g. the profiler's SIGPROF, or SIGTERM racing shutdown)
    // interrupting the read must not drop a healthy connection —
    // retry_eintr absorbs it. An injected socket.read fault simulates the
    // hard-error path: this connection drops, the daemon keeps serving.
    ssize_t got = -1;
    if (!faults.maybe_errno("socket.read", EIO))
      got = util::retry_eintr([&] {
        return ::read(fd, chunk, sizeof(chunk));
      });
    if (got <= 0) break;  // EOF or hard error: drop the connection
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t newline;
    while (!quit && (newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (is_blank_request(parse_request(line))) continue;
      const std::string response = handle_line(line, &quit) + "\n";
      std::size_t sent = 0;
      while (sent < response.size()) {
        // MSG_NOSIGNAL: a client that disconnected mid-response must cost
        // us this connection (EPIPE), not the whole daemon (SIGPIPE).
        ssize_t n = -1;
        if (!faults.maybe_errno("socket.send", EPIPE))
          n = util::retry_eintr([&] {
            return ::send(fd, response.data() + sent,
                          response.size() - sent, MSG_NOSIGNAL);
          });
        if (n <= 0) { quit = true; break; }
        sent += static_cast<std::size_t>(n);
      }
      if (sent == response.size()) count_request_for_snapshot();
    }
  }
  ::close(fd);
}

void ServeLoop::run_unix_socket(const std::string& path) {
  REBERT_CHECK_MSG(path.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long: " + path);
  // Only ever unlink something that is actually a socket: a path collision
  // with a regular file (a config, a checkpoint) must fail loudly, not
  // silently destroy the file.
  struct stat existing;
  if (::lstat(path.c_str(), &existing) == 0) {
    REBERT_CHECK_MSG(S_ISSOCK(existing.st_mode),
                     "refusing to serve on " + path +
                         ": path exists and is not a socket");
    ::unlink(path.c_str());
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  REBERT_CHECK_MSG(listener >= 0, "socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    REBERT_CHECK_MSG(false, "cannot listen on " + path + ": " + reason);
  }
  listen_fd_.store(listener, std::memory_order_relaxed);
  // Belt and braces with the MSG_NOSIGNAL sends: nothing else in this
  // process wants SIGPIPE's default die-on-write either (a half-closed
  // stdio pipe would otherwise kill a daemon mid-reply).
  std::signal(SIGPIPE, SIG_IGN);
  LOG_INFO << "serve: listening on unix socket " << path;

  // One handler thread per live connection, bounded by max_connections.
  // Finished handlers flag `done` and are joined on the accept path, so a
  // long-lived daemon never accumulates dead threads.
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Handler> handlers;
  const auto reap = [&handlers] {
    for (auto it = handlers.begin(); it != handlers.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = handlers.erase(it);
      } else {
        ++it;
      }
    }
  };
  while (!stopping_.load(std::memory_order_relaxed)) {
    // stop() closes the listener, so a retried accept fails fast instead
    // of blocking; EINTR alone must not end the accept loop.
    const int fd =
        util::retry_eintr([&] { return ::accept(listener, nullptr, nullptr); });
    if (fd < 0) break;  // listener closed by stop(), or hard error
    reap();
    if (max_connections_ > 0 &&
        static_cast<int>(handlers.size()) >= max_connections_) {
      // Shed at the door: one advisory line, then close — no handler
      // thread, no unbounded backlog. Count it before sending, so a
      // client that saw the refusal also sees it in stats.
      engine_.record_shed();
      const std::string refusal =
          format_overloaded(engine_.retry_after_ms()) + "\n";
      (void)util::retry_eintr([&] {
        return ::send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
      });
      ::close(fd);
      continue;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, fd, done] {
      handle_connection(fd);
      done->store(true, std::memory_order_release);
    });
    handlers.push_back({std::move(thread), std::move(done)});
  }
  for (Handler& handler : handlers) handler.thread.join();
  const int open_fd = listen_fd_.exchange(-1, std::memory_order_relaxed);
  if (open_fd >= 0) ::close(open_fd);
  ::unlink(path.c_str());
  snapshot_cache(/*force=*/true);
}

void ServeLoop::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  // Closing the listener unblocks accept(); shutdown() first so a
  // concurrent accept returns instead of racing the close.
  const int fd = listen_fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace rebert::serve
