// SocketServer — the reusable AF_UNIX listener behind both protocol
// encodings, built on a non-blocking epoll reactor.
//
// One reactor thread (the caller of run()) owns the listener and every
// connection descriptor: sockets are O_NONBLOCK, registered level-
// triggered in a single epoll set, each with its own read buffer and a
// bounded write queue for partial sends. Request work never runs on the
// reactor — a parsed line or frame is dispatched to an internal
// runtime::ThreadPool, and the finished response is handed back through a
// completion queue plus an eventfd wakeup, so ten thousand idle
// connections cost ten thousand descriptors and zero threads. What each
// request *means* is the owner's business, injected via Callbacks —
// ServeLoop plugs in the inference engine dispatcher, the Router plugs in
// its forwarding loop, and both get identical transport semantics (and
// identical chaos coverage) for free.
//
// Each connection speaks exactly one encoding, decided by its first byte:
// wire::kFrameMagic (0xAB, not a printable character) switches the
// connection to the binary frame protocol — the client must then open
// with a kHello frame, answered kHelloAck — while anything else is served
// as newline text. The text side bounds its line length
// (protocol.h kMaxRequestLineBytes): an oversized line gets a protocol
// error and the connection is closed instead of buffering without limit.
// On the binary side a malformed frame (bad magic mid-stream, reserved
// bits, length over cap, checksum mismatch) earns a kError frame and a
// close — after a framing error the stream has no safe resync point.
//
// Overload shed is encoding-aware: a connection over max_connections is
// accepted and parked until its first byte arrives, then refused in its
// own protocol — overload_frame() bytes when the byte is the frame magic,
// overload_line() text otherwise — so a binary client's FrameReader sees
// a well-formed retryable advisory, never text masquerading as a frame.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "wire/frame.h"

namespace rebert::runtime {
class ThreadPool;
}  // namespace rebert::runtime

namespace rebert::serve {

class SocketServer {
 public:
  struct Callbacks {
    /// Required. Dispatch one request line; return the response line (no
    /// trailing newline). Set *close_connection to end this connection
    /// after the response is sent. Must not throw — convert failures to
    /// `err ...` lines. Runs on a dispatch pool thread, concurrently with
    /// other connections' requests (never with another request from the
    /// same connection — per-connection dispatch is serialized).
    std::function<std::string(const std::string& line,
                              bool* close_connection)> handle_line;
    /// Optional. True for lines to skip without a response (blank /
    /// comment lines). Default: skip nothing. Runs on the reactor thread.
    std::function<bool(const std::string& line)> is_blank;
    /// Optional. The one-line refusal sent (then the connection closed)
    /// when a connection over max_connections opens in text. Also the
    /// place to count the shed. Default: "err overloaded".
    std::function<std::string()> overload_line;
    /// Optional. Invoked after each response is fully flushed to the
    /// socket — cadence hooks (cache snapshots) go here. Runs on the
    /// dispatch pool (never the reactor thread, which must stay free to
    /// accept and pump every other connection), so it may fire
    /// concurrently with itself and with request dispatches — serialize
    /// internally if the hook needs it.
    std::function<void()> on_answered;
    /// Optional. Invoked once when run() finishes shutting down, after
    /// every in-flight dispatch has drained.
    std::function<void()> on_shutdown;
    /// Optional. Dispatch one verified kRequest frame; return the
    /// complete response frame bytes (wire::encode_response). Set
    /// *close_connection to end the connection after the response. Must
    /// not throw. Absent: binary negotiation is refused and connections
    /// opening with the frame magic are turned away with a kError frame.
    /// Runs on a dispatch pool thread, like handle_line.
    std::function<std::string(const wire::Frame& frame,
                              bool* close_connection)> handle_frame;
    /// Optional. The complete response frame bytes refusing a connection
    /// over max_connections that opens with the frame magic — the
    /// binary twin of overload_line, also the place to count the shed.
    /// Default: wire::encode_response(wire::overloaded_response(0)).
    std::function<std::string()> overload_frame;
  };

  explicit SocketServer(Callbacks callbacks);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Cap on concurrently served connections; 0 = unlimited. A connection
  /// over the cap is parked until its first byte reveals its encoding,
  /// then refused with overload_frame() / overload_line() and closed — it
  /// never dispatches work and never counts against the cap itself.
  void set_max_connections(int n) { max_connections_ = n; }

  /// Gate for the binary wire protocol (default on, effective only when
  /// the owner supplied handle_frame). Off, connections opening with the
  /// frame magic are refused — what `serve --binary false` wires through.
  void set_accept_binary(bool accept) { accept_binary_ = accept; }

  /// listen(2) backlog; <= 0 (the default) means SOMAXCONN. The old
  /// hardcoded 16 got connection storms ECONNREFUSED in the kernel before
  /// admission control could answer with retry_after_ms.
  void set_listen_backlog(int backlog) { listen_backlog_ = backlog; }

  /// Threads in the internal dispatch pool that runs handle_line /
  /// handle_frame; <= 0 (the default) picks kDefaultDispatchThreads.
  /// Takes effect on the next run().
  void set_dispatch_threads(int n) { dispatch_threads_ = n; }

  static constexpr int kDefaultDispatchThreads = 16;

  /// Listen on an AF_UNIX stream socket at `path` (unlinked first — but
  /// only if it already is a socket — and on shutdown). Runs the reactor
  /// loop on the calling thread; blocks until stop(). Throws
  /// util::CheckError when the socket cannot be bound.
  void run(const std::string& path);

  /// End run(): the reactor wakes via the eventfd, stops accepting,
  /// drains in-flight dispatches (responses are flushed best-effort —
  /// a peer that never reads cannot wedge shutdown), closes every
  /// connection it owns, and returns. Safe from any thread, idempotent,
  /// and honoured by a run() that has not started yet.
  void stop();

 private:
  struct Reactor;  // the per-run() epoll state machine (socket_server.cc)

  // One finished dispatch, handed from a pool worker back to the reactor.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string bytes;
    bool close = false;     // dispatcher set *close_connection
    bool answered = false;  // counts for on_answered once flushed
  };

  /// Queue a finished dispatch's response and wake the reactor. Runs on
  /// dispatch-pool workers. Everything it touches (completion_mu_ and its
  /// guarded state, wake_fd_) lives on the server — NOT the per-run()
  /// Reactor — so a worker preempted here while run() tears the reactor
  /// down still operates on live memory.
  void complete(Completion completion);

  Callbacks callbacks_;
  int max_connections_ = 0;
  int listen_backlog_ = 0;    // <= 0: SOMAXCONN
  int dispatch_threads_ = 0;  // <= 0: kDefaultDispatchThreads
  std::atomic<bool> accept_binary_{true};
  std::atomic<bool> stopping_{false};
  // eventfd owned for the server's whole life (created in the
  // constructor), so stop() and worker completions always have a live
  // descriptor to poke regardless of run()'s progress.
  int wake_fd_ = -1;
  // Dispatch pool for handle_line / handle_frame; created lazily by
  // run() so a ServeLoop used only over stdio never spawns it.
  std::unique_ptr<runtime::ThreadPool> pool_;
  // The worker -> reactor handoff. Owned by the server, not the Reactor,
  // because pool workers outlive any one run(): a completion landing in
  // the sliver between the shutdown drain's last look and run()'s return
  // must push into memory that is still alive. The reactor swaps the
  // vector out under the lock and applies it lock-free; `inflight_`
  // counts submitted-but-uncompleted dispatches so the drain knows when
  // nothing can arrive anymore.
  util::Mutex completion_mu_{"socket.completions"};
  std::vector<Completion> completions_ GUARDED_BY(completion_mu_);
  std::size_t inflight_ GUARDED_BY(completion_mu_) = 0;
  // Connection ids, monotonic across run()s (touched by the reactor
  // thread only): a completion stranded from a previous run can never
  // alias a connection of the next one.
  std::uint64_t next_conn_id_ = 1;
};

}  // namespace rebert::serve
