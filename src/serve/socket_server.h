// SocketServer — the reusable AF_UNIX listener behind both protocol
// encodings.
//
// Owns everything transport: bind/listen (refusing to unlink a non-socket
// path), one handler thread per connection with on-accept reaping, the
// connection cap with a polite shed line at the door, EINTR-safe reads and
// MSG_NOSIGNAL sends, and the socket.read / socket.send chaos sites.
// What each request *means* is the owner's business, injected via
// Callbacks — ServeLoop plugs in the inference engine dispatcher, the
// Router plugs in its forwarding loop, and both get identical transport
// semantics (and identical chaos coverage) for free.
//
// Each connection speaks exactly one encoding, decided by its first byte:
// wire::kFrameMagic (0xAB, not a printable character) switches the
// connection to the binary frame protocol — the client must then open
// with a kHello frame, answered kHelloAck — while anything else is served
// as newline text. The text side bounds its line length
// (protocol.h kMaxRequestLineBytes): an oversized line gets a protocol
// error and the connection is closed instead of buffering without limit.
// On the binary side a malformed frame (bad magic mid-stream, reserved
// bits, length over cap, checksum mismatch) earns a kError frame and a
// close — after a framing error the stream has no safe resync point.
#pragma once

#include <atomic>
#include <functional>
#include <set>
#include <string>

#include "util/mutex.h"
#include "wire/frame.h"

namespace rebert::serve {

class SocketServer {
 public:
  struct Callbacks {
    /// Required. Dispatch one request line; return the response line (no
    /// trailing newline). Set *close_connection to end this connection
    /// after the response is sent. Must not throw — convert failures to
    /// `err ...` lines.
    std::function<std::string(const std::string& line,
                              bool* close_connection)> handle_line;
    /// Optional. True for lines to skip without a response (blank /
    /// comment lines). Default: skip nothing.
    std::function<bool(const std::string& line)> is_blank;
    /// Optional. The one-line refusal sent (then the connection closed)
    /// when a connection arrives over max_connections. Also the place to
    /// count the shed. Default: "err overloaded".
    std::function<std::string()> overload_line;
    /// Optional. Invoked after each response is fully sent — cadence hooks
    /// (cache snapshots) go here.
    std::function<void()> on_answered;
    /// Optional. Invoked once when run() finishes shutting down, after all
    /// handler threads joined.
    std::function<void()> on_shutdown;
    /// Optional. Dispatch one verified kRequest frame; return the
    /// complete response frame bytes (wire::encode_response). Set
    /// *close_connection to end the connection after the response. Must
    /// not throw. Absent: binary negotiation is refused and connections
    /// opening with the frame magic are turned away with a kError frame.
    std::function<std::string(const wire::Frame& frame,
                              bool* close_connection)> handle_frame;
  };

  explicit SocketServer(Callbacks callbacks);

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Cap on concurrently served connections; 0 = unlimited. Connections
  /// over the cap get overload_line() and an immediate close — no handler
  /// thread, no unbounded backlog.
  void set_max_connections(int n) { max_connections_ = n; }

  /// Gate for the binary wire protocol (default on, effective only when
  /// the owner supplied handle_frame). Off, connections opening with the
  /// frame magic are refused — what `serve --binary false` wires through.
  void set_accept_binary(bool accept) { accept_binary_ = accept; }

  /// Listen on an AF_UNIX stream socket at `path` (unlinked first — but
  /// only if it already is a socket — and on shutdown). Blocks until
  /// stop(). Throws util::CheckError when the socket cannot be bound.
  void run(const std::string& path);

  /// End run(): stop accepting, shut down the listener (run()'s own
  /// thread closes it), shut down every live connection (an idle client —
  /// e.g. a pooled connection held open for reuse — must not wedge
  /// shutdown), join the handlers. Safe from any thread, idempotent, and
  /// honoured by a run() that has not started yet.
  void stop() EXCLUDES(conns_mu_);

 private:
  void handle_connection(int fd);
  void register_connection(int fd) EXCLUDES(conns_mu_);
  void unregister_connection(int fd) EXCLUDES(conns_mu_);

  Callbacks callbacks_;
  int max_connections_ = 0;
  std::atomic<bool> accept_binary_{true};
  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  // Live accepted connections, so stop() can shutdown() blocked readers.
  // A handler deregisters its fd BEFORE closing it, so stop() never
  // touches a descriptor number the kernel may have reused.
  util::Mutex conns_mu_{"socket.conns"};
  std::set<int> conn_fds_ GUARDED_BY(conns_mu_);
};

}  // namespace rebert::serve
