// ClientPool — bounded reuse of serve::Client connections to one daemon.
//
// Connection setup is the expensive part of a request round-trip (socket,
// connect handshake, the daemon spawning a handler thread), so callers
// that issue many requests — the router's backend links, the bench load
// generators — check connections out of a shared pool instead of opening
// one per request:
//
//   ClientPool pool(socket_path);
//   {
//     ClientPool::Lease lease = pool.acquire();   // reuse or connect
//     if (lease) reply = lease->request(line);
//   }                                             // returned to the pool
//
// The Lease is RAII: destruction returns a still-connected client to the
// pool (up to max_idle; beyond that it is closed), and discard() drops a
// client whose connection died mid-request so a broken socket is never
// handed to the next caller. All socket I/O underneath is EINTR-safe via
// util::retry_eintr (see client.cc). The pool itself is thread-safe; the
// Client held by a lease is owned exclusively by that lease.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.h"
#include "util/mutex.h"

namespace rebert::serve {

class ClientPool {
 public:
  class Lease {
   public:
    Lease() = default;
    Lease(ClientPool* pool, std::unique_ptr<Client> client);
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    /// Falsy when the pool could not produce a connected client.
    explicit operator bool() const { return client_ != nullptr; }
    Client* operator->() { return client_.get(); }
    Client& operator*() { return *client_; }

    /// Drop the client instead of returning it — call after a request()
    /// threw (the connection is in an unknown state and must not be
    /// reused).
    void discard();

   private:
    void release();

    ClientPool* pool_ = nullptr;
    std::unique_ptr<Client> client_;
    std::uint64_t retries_at_acquire_ = 0;
    friend class ClientPool;
  };

  /// Pool for one daemon socket. `max_idle` bounds how many idle
  /// connections are retained between leases — the working set can burst
  /// higher (every concurrent lease is live), but at most max_idle
  /// sockets stay open while unused.
  explicit ClientPool(std::string socket_path, ClientOptions options = {},
                      std::size_t max_idle = 8);

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Check a connected client out of the pool, reusing an idle connection
  /// when one exists and dialing a new one otherwise. The Lease is falsy
  /// when the daemon could not be reached within the ClientOptions
  /// connect budget.
  Lease acquire() EXCLUDES(mu_);

  /// Like acquire(), but always dials a brand-new connection — the
  /// router's "retry on a fresh socket" path after a pooled connection
  /// turned out to be stale.
  Lease acquire_fresh() EXCLUDES(mu_);

  /// Close every idle connection now (leased clients are unaffected).
  void clear_idle() EXCLUDES(mu_);

  const std::string& socket_path() const { return path_; }
  std::size_t idle() const EXCLUDES(mu_);
  std::uint64_t created() const EXCLUDES(mu_);
  std::uint64_t reused() const EXCLUDES(mu_);
  std::uint64_t discarded() const EXCLUDES(mu_);
  /// Overload retries performed by clients of this pool, aggregated as
  /// leases are returned — what the load generators report.
  std::uint64_t retries() const EXCLUDES(mu_);

 private:
  void give_back(std::unique_ptr<Client> client, std::uint64_t new_retries)
      EXCLUDES(mu_);
  void count_discard(std::uint64_t new_retries) EXCLUDES(mu_);

  std::string path_;
  ClientOptions options_;
  std::size_t max_idle_;

  mutable util::Mutex mu_{"client_pool"};
  std::vector<std::unique_ptr<Client>> idle_ GUARDED_BY(mu_);
  std::uint64_t created_ GUARDED_BY(mu_) = 0;
  std::uint64_t reused_ GUARDED_BY(mu_) = 0;
  std::uint64_t discarded_ GUARDED_BY(mu_) = 0;
  std::uint64_t retries_ GUARDED_BY(mu_) = 0;
};

}  // namespace rebert::serve
