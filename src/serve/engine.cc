#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <future>

#include "circuitgen/suite.h"
#include "kernels/backend.h"
#include "nl/decompose.h"
#include "persist/cache_io.h"
#include "nl/netlist.h"
#include "nl/parser.h"
#include "rebert/scoring.h"
#include "runtime/fault_injector.h"
#include "runtime/threads.h"
#include "structural/matching.h"
#include "util/check.h"
#include "util/logging.h"

namespace rebert::serve {

namespace {

bool is_generated_bench(const std::string& name) {
  const std::vector<std::string>& names = gen::benchmark_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

// The registry always exists: with no manifest the engine behaves exactly
// as a single-model deployment — one entry named "default", loaded from
// model_path (or fresh weights), sharing the persisted cache.
ModelManifest manifest_for(const EngineOptions& options) {
  if (!options.manifest_path.empty())
    return parse_model_manifest(options.manifest_path);
  ModelManifest single;
  single.models.push_back(
      {"default", options.model_path.empty() ? "-" : options.model_path, 0});
  single.default_model = "default";
  return single;
}

}  // namespace

InferenceEngine::InferenceEngine(EngineOptions options)
    : options_(std::move(options)),
      tokenizer_(options_.experiment.pipeline.tokenizer),
      pool_(std::max(
          1, runtime::resolve_thread_count(options_.num_threads) - 1)),
      cache_(options_.cache_shards),
      registry_(manifest_for(options_),
                core::make_model_config(options_.experiment), &cache_,
                options_.cache_shards) {
  REBERT_CHECK_MSG(options_.batch_size >= 1,
                   "serve batch size must be at least 1");
  if (options_.manifest_path.empty() && options_.model_path.empty()) {
    LOG_WARN << "serve: no --model given; using untrained weights "
                "(scores exercise the runtime, not the paper's accuracy)";
  } else {
    LOG_INFO << "serve: registry holds " << registry_.size() << " model(s), "
             << registry_.unhealthy_count() << " unhealthy";
  }
}

const InferenceEngine::BenchContext& InferenceEngine::bench(
    const std::string& name) {
  util::MutexLock lock(benches_mu_);
  auto it = benches_.find(name);
  if (it != benches_.end()) return *it->second;

  // First use: generate or parse, decompose, tokenize. Loading holds the
  // registry lock — concurrent requests for other benches wait, which is
  // acceptable for a registry that fills once and is then read-only.
  nl::Netlist netlist;
  if (is_generated_bench(name)) {
    netlist = gen::generate_benchmark(name, options_.suite_scale).netlist;
  } else {
    netlist = nl::parse_bench_file(name);
    if (!nl::is_2input(netlist)) netlist = nl::decompose_to_2input(netlist);
  }

  auto context = std::make_unique<BenchContext>();
  context->bits = nl::extract_bits(netlist);
  REBERT_CHECK_MSG(!context->bits.empty(),
                   "bench '" + name + "' has no sequential elements");
  context->sequences = tokenizer_.tokenize_bits(netlist);
  for (int i = 0; i < static_cast<int>(context->bits.size()); ++i)
    context->index_of[context->bits[static_cast<std::size_t>(i)].name] = i;
  // The netlist outlives tokenization so a model-path failure can still
  // answer recover via the structural baseline (no model involved).
  context->netlist = std::move(netlist);
  LOG_INFO << "serve: loaded bench " << name << " ("
           << context->bits.size() << " bits)";
  it = benches_.emplace(name, std::move(context)).first;
  return *it->second;
}

int InferenceEngine::bit_index(const BenchContext& context,
                               const std::string& bench,
                               const std::string& bit) const {
  const auto it = context.index_of.find(bit);
  REBERT_CHECK_MSG(it != context.index_of.end(),
                   "bench '" + bench + "' has no bit named '" + bit + "'");
  return it->second;
}

void InferenceEngine::Admission::release() {
  if (engine_ == nullptr) return;
  engine_->inflight_.fetch_sub(1, std::memory_order_relaxed);
  if (!bench_.empty()) engine_->release_bench_slot(bench_);
  engine_ = nullptr;
  bench_.clear();
}

InferenceEngine::Admission InferenceEngine::try_admit(
    const std::string& bench) {
  const int budget = options_.max_inflight;
  Admission admission;
  if (budget < 1) {  // unlimited: keep the gauge, never decline
    inflight_.fetch_add(1, std::memory_order_relaxed);
    admission = Admission(this);
  } else {
    int current = inflight_.load(std::memory_order_relaxed);
    while (true) {
      if (current >= budget) {
        shed_requests_.fetch_add(1, std::memory_order_relaxed);
        return Admission();
      }
      if (inflight_.compare_exchange_weak(current, current + 1,
                                          std::memory_order_relaxed)) {
        admission = Admission(this);
        break;
      }
    }
  }
  // Per-bench budget on top of the global one. Declining here destructs
  // `admission`, which returns the already-taken global slot.
  const int bench_budget = options_.max_inflight_per_bench;
  if (bench_budget >= 1 && !bench.empty()) {
    util::MutexLock lock(bench_slots_mu_);
    int& count = bench_inflight_[bench];
    if (count >= bench_budget) {
      bench_shed_requests_.fetch_add(1, std::memory_order_relaxed);
      shed_requests_.fetch_add(1, std::memory_order_relaxed);
      return Admission();
    }
    ++count;
    admission.bench_ = bench;
  }
  return admission;
}

void InferenceEngine::release_bench_slot(const std::string& bench) {
  util::MutexLock lock(bench_slots_mu_);
  auto it = bench_inflight_.find(bench);
  if (it != bench_inflight_.end() && --it->second <= 0)
    bench_inflight_.erase(it);
}

double InferenceEngine::score(const std::string& bench,
                              const std::string& bit_a,
                              const std::string& bit_b,
                              runtime::CancellationToken* cancel,
                              const std::string& model) {
  return score_batch(bench, {{bit_a, bit_b}}, cancel, model).front();
}

std::vector<double> InferenceEngine::score_batch(
    const std::string& bench_name,
    const std::vector<std::pair<std::string, std::string>>& bit_pairs,
    runtime::CancellationToken* cancel, const std::string& model) {
  score_requests_.fetch_add(bit_pairs.size(), std::memory_order_relaxed);
  const BenchContext& context = bench(bench_name);
  ModelRegistry::Entry& entry =
      registry_.select(model, static_cast<int>(context.bits.size()));
  // An explicitly named entry whose checkpoint never loaded cannot score
  // anything meaningful — that is a request error, not a server fault.
  // (The size rule never picks such entries; see ModelRegistry::select.)
  REBERT_CHECK_MSG(entry.load_ok, "model '" + entry.spec.name +
                                      "' is unhealthy (checkpoint failed "
                                      "to load)");
  entry.requests.fetch_add(bit_pairs.size(), std::memory_order_relaxed);
  core::ShardedPredictionCache& cache = *entry.cache;
  const bool use_cache = options_.experiment.pipeline.use_prediction_cache;

  std::vector<double> scores(bit_pairs.size(), 0.0);

  // Pass 1 (inline): resolve names, answer cache hits, and encode misses.
  struct Miss {
    std::size_t slot;       // index into `scores`
    std::uint64_t key;
    bert::EncodedSequence encoded;
  };
  std::vector<Miss> misses;
  for (std::size_t p = 0; p < bit_pairs.size(); ++p) {
    const int i = bit_index(context, bench_name, bit_pairs[p].first);
    const int j = bit_index(context, bench_name, bit_pairs[p].second);
    const core::BitSequence& a =
        context.sequences[static_cast<std::size_t>(i)];
    const core::BitSequence& b =
        context.sequences[static_cast<std::size_t>(j)];
    const std::uint64_t key = core::PredictionCache::key_of(a, b);
    double cached = 0.0;
    if (use_cache && cache.lookup(key, &cached)) {
      scores[p] = cached;
      continue;
    }
    misses.push_back({p, key, tokenizer_.encode_pair(a, b)});
  }

  // Pass 2 (pool): forward the misses in fixed-size micro-batches. Each
  // task owns a disjoint [begin, end) span of `misses`, so the score
  // writes never alias. The deadline token is polled between batches only
  // — a started forward always finishes.
  const std::size_t batch = static_cast<std::size_t>(options_.batch_size);
  std::vector<std::future<void>> futures;
  std::exception_ptr failure;
  for (std::size_t begin = 0; begin < misses.size(); begin += batch) {
    if (cancel != nullptr && cancel->requested()) break;  // stop issuing
    const std::size_t end = std::min(begin + batch, misses.size());
    auto forward_batch = [&entry, &cache, &misses, &scores, begin, end,
                          cancel, use_cache] {
      if (cancel != nullptr && cancel->requested()) return;
      std::vector<const bert::EncodedSequence*> inputs;
      inputs.reserve(end - begin);
      for (std::size_t m = begin; m < end; ++m)
        inputs.push_back(&misses[m].encoded);
      const std::vector<double> probs =
          entry.model->predict_same_word_probabilities(inputs);
      for (std::size_t m = begin; m < end; ++m) {
        scores[misses[m].slot] = probs[m - begin];
        if (use_cache) cache.insert(misses[m].key, probs[m - begin]);
      }
    };
    try {
      futures.push_back(pool_.submit(forward_batch));
    } catch (...) {
      // Enqueue failure (injected pool.submit fault, allocation pressure,
      // a saturated bounded queue in a future backend): run the batch on
      // this thread — slower, never lost. A failing forward still must not
      // escape before submitted batches settle, so park its exception.
      try {
        forward_batch();
      } catch (...) {
        if (!failure) failure = std::current_exception();
      }
    }
  }
  // Help drain while waiting so a busy pool cannot starve this request.
  // Every future must settle before returning (tasks reference locals);
  // only then may cancellation or a task failure surface.
  for (std::future<void>& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool_.try_run_one())
        future.wait_for(std::chrono::milliseconds(1));
    }
    try {
      future.get();
    } catch (...) {
      if (!failure) failure = std::current_exception();
    }
  }
  if (cancel != nullptr && cancel->requested()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    throw runtime::CancelledError();
  }
  if (failure) {
    model_healthy_.store(false, std::memory_order_relaxed);
    entry.healthy.store(false, std::memory_order_relaxed);
    std::rethrow_exception(failure);
  }
  if (!misses.empty()) {
    model_healthy_.store(true, std::memory_order_relaxed);
    entry.healthy.store(true, std::memory_order_relaxed);
  }
  return scores;
}

RecoverSummary InferenceEngine::recover(const std::string& bench_name,
                                        runtime::CancellationToken* cancel,
                                        const std::string& model) {
  recover_requests_.fetch_add(1, std::memory_order_relaxed);
  // Failures before scoring (unknown bench, unparsable .bench file,
  // unknown model name) are request errors, not model failures — they
  // propagate undegraded.
  const BenchContext& context = bench(bench_name);
  ModelRegistry::Entry& entry =
      registry_.select(model, static_cast<int>(context.bits.size()));
  entry.requests.fetch_add(1, std::memory_order_relaxed);
  const core::PipelineOptions& pipeline = options_.experiment.pipeline;

  util::WallTimer timer;
  RecoverSummary summary;
  summary.num_bits = static_cast<int>(context.bits.size());
  std::vector<int> labels;
  // An entry whose checkpoint never loaded has nothing to forward — go
  // straight to the structural baseline instead of failing the request.
  bool try_model = entry.load_ok;
  if (!try_model) {
    degraded_recoveries_.fetch_add(1, std::memory_order_relaxed);
    LOG_WARN << "serve: recover(" << bench_name << ") model '"
             << entry.spec.name
             << "' never loaded; answering via the structural baseline";
  }
  if (try_model) {
    try {
      core::ScoringOptions scoring;
      scoring.pool = &pool_;
      scoring.cancel = cancel;
      const core::ScoreMatrix matrix = core::score_all_pairs(
          context.sequences, tokenizer_, pipeline.filter, *entry.model,
          pipeline.use_prediction_cache ? entry.cache : nullptr, scoring);
      labels = core::group_words(matrix, pipeline.grouping);
      summary.filtered_fraction = matrix.filtered_fraction();
      model_healthy_.store(true, std::memory_order_relaxed);
      entry.healthy.store(true, std::memory_order_relaxed);
    } catch (const runtime::CancelledError&) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      throw;
    } catch (const std::exception& e) {
      // Model-path failure (injected forward fault, NaN tripwire, broken
      // checkpoint arithmetic): degrade to the structural matching baseline
      // — no model involved — instead of failing the request.
      model_healthy_.store(false, std::memory_order_relaxed);
      entry.healthy.store(false, std::memory_order_relaxed);
      degraded_recoveries_.fetch_add(1, std::memory_order_relaxed);
      LOG_WARN << "serve: recover(" << bench_name << ") model path failed ("
               << e.what() << "); answering via the structural baseline";
      try_model = false;
    }
  }
  if (!try_model) {
    structural::MatchingOptions matching;
    matching.backtrace_depth = pipeline.tokenizer.backtrace_depth;
    labels = structural::recover_words_structural(context.netlist,
                                                  matching).labels;
    summary.degraded = true;
  }
  // The fallback runs serially and does not poll the token; honour a
  // deadline that fired while it ran rather than returning late.
  if (cancel != nullptr && cancel->requested()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    throw runtime::CancelledError();
  }

  summary.num_words = metrics::num_clusters(labels);
  summary.cache_hit_rate = entry.cache->hit_rate();
  summary.seconds = timer.seconds();
  return summary;
}

EngineStats InferenceEngine::stats() const {
  EngineStats stats;
  stats.threads = pool_.size() + 1;
  stats.batch_size = options_.batch_size;
  stats.cache_shards = cache_.num_shards();
  stats.score_requests = score_requests_.load(std::memory_order_relaxed);
  stats.recover_requests =
      recover_requests_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_entries = cache_.size();
  stats.warm_entries = warm_entries_.load(std::memory_order_relaxed);
  {
    util::MutexLock lock(benches_mu_);
    stats.benches_loaded = benches_.size();
  }
  stats.uptime_seconds = uptime_.seconds();
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  stats.max_inflight = options_.max_inflight;
  stats.model_healthy = model_healthy_.load(std::memory_order_relaxed);
  stats.shed_requests = shed_requests_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.degraded_recoveries =
      degraded_recoveries_.load(std::memory_order_relaxed);
  stats.faults_injected = runtime::FaultInjector::global().total_trips();
  stats.models = static_cast<int>(registry_.size());
  stats.unhealthy_models = registry_.unhealthy_count();
  stats.max_inflight_per_bench = options_.max_inflight_per_bench;
  stats.bench_shed_requests =
      bench_shed_requests_.load(std::memory_order_relaxed);
  stats.kernels = kernels::backend_name(kernels::active_backend());
  return stats;
}

std::size_t InferenceEngine::load_cache(const std::string& path) {
  // v2 snapshots attach as a zero-copy warm tier (validate + mmap, no
  // materialization); v1 snapshots stream-import as before. Either way a
  // missing/corrupt file warms nothing and serving starts cold.
  const std::size_t loaded = persist::warm_start_cache(&cache_, path);
  warm_entries_.fetch_add(loaded, std::memory_order_relaxed);
  if (loaded > 0) {
    LOG_INFO << "serve: warm-started " << loaded << " cache entries from "
             << path;
  }
  return loaded;
}

void InferenceEngine::save_cache(const std::string& path) const {
  // Chaos site: simulates a failing snapshot write (disk full, EIO).
  // ServeLoop::snapshot_cache catches and logs — losing a snapshot must
  // never take serving down.
  runtime::FaultInjector::global().maybe_throw("snapshot.save");
  persist::save_cache(cache_, path);
}

int InferenceEngine::warm(const std::string& name) {
  return static_cast<int>(bench(name).bits.size());
}

std::vector<std::string> InferenceEngine::bit_names(
    const std::string& name) {
  const BenchContext& context = bench(name);
  std::vector<std::string> names;
  names.reserve(context.bits.size());
  for (const nl::Bit& bit : context.bits) names.push_back(bit.name);
  return names;
}

}  // namespace rebert::serve
