// Router — one endpoint in front of a ring of serve backends.
//
// Speaks the same newline protocol as a single `rebert_cli serve` daemon
// (protocol.h), so clients cannot tell a router from a backend: score and
// recover lines are consistent-hashed on their <bench> token onto a
// HashRing of backend worker processes (each a standard serve daemon
// reached through a serve::ClientPool) and forwarded verbatim; the
// backend's reply — including `err overloaded retry_after_ms=<n>` and
// `degraded=structural` tags — passes through untouched. Hashing on the
// bench name pins each bench's context (netlized, tokenized, cached
// scores) to one backend, which is what makes the fan-out scale: no
// backend pays for benches it never sees.
//
// Replicated placement (replicas = R, default 2): every request goes to
// the key's PRIMARY owner, and each ok-answered score is additionally
// enqueued on a bounded mirror queue and replayed — asynchronously, best
// effort, never blocking the answer — against the SECONDARY owner, so the
// replica's prediction cache and bench contexts stay warm. When the
// primary is unreachable (probe-dead, stale pooled connection, fresh
// connect refused) the router marks it unhealthy and fails over to the
// next owner in ring order — which the mirror kept warm — instead of
// answering `no_backend`; when the primary merely answers `err
// overloaded`, the secondary is tried too (`replica_hits` counts answers
// served by a non-primary owner, `mirrored` / `mirror_dropped` audit the
// mirror queue).
//
// Queue-with-timeout (queue_depth > 0): the middle ground between forward
// and shed. A request that found no owner able to answer — every owner
// saturated, or the whole ring briefly dead during a restart — parks in a
// bounded router-side queue and re-attempts placement until
// queue_timeout_ms elapses: it rides out a backend respawn or an
// admission spike invisibly. On expiry it answers the last backend shed
// advisory (`err overloaded retry_after_ms=<n>`) when owners were alive
// but saturated, `err deadline_exceeded` otherwise; when the queue itself
// is full the request is shed immediately with the router's advisory.
// queue_depth = 0 (default) disables parking — refusals are immediate,
// exactly the pre-queue behaviour.
//
// Health: a backend whose connection dies mid-request is retried once on a
// fresh socket (pooled connections go stale when a backend restarts), then
// marked unhealthy and removed from the ring — the request transparently
// fails over to the next owner (counted in `reroutes`). A background
// prober sends `health` to every backend each probe interval, evicting
// newly dead backends and re-adding revived ones, so a restarted worker
// re-takes exactly its old key range (consistent hashing is deterministic
// in the node name and weight).
//
// Admin verbs (answered locally, never forwarded):
//   backends            one line listing each backend's name, path, state
//   owners <bench>      the bench's owner list in failover order
//   drain <name>        remove from the ring (for maintenance); undrain
//   undrain <name>      to put it back
//   stats / health      router-level counters and ring state
//   help / quit         as a backend, plus the admin verbs
//
// The router also accepts the binary wire protocol (wire/frame.h):
// score/recover request frames are relayed to the owning backend
// byte-for-byte over a second, binary-negotiated connection pool — the
// router never re-encodes a frame in either direction, so backend
// overload and degraded flags arrive exactly as sent. The text admin
// verbs stay text-only.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/hash_ring.h"
#include "serve/client_pool.h"
#include "serve/socket_server.h"
#include "util/mutex.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace rebert::router {

struct RouterOptions {
  /// Virtual nodes per unit of backend weight on the ring (hash_ring.h).
  int vnodes = 64;
  /// Replication factor R: a key's request goes to owner 0 and fails over
  /// down the owner list; ok-answered scores are mirrored to owner 1.
  /// 1 restores single-owner placement (no failover, no mirroring).
  int replicas = 2;
  /// Health probe cadence; <= 0 disables the prober thread.
  int probe_interval_ms = 200;
  /// Placement passes per request: each pass re-snapshots the owner list
  /// (the ring shrinks as dead owners are marked) and tries every owner
  /// once before the request parks or is refused.
  int forward_attempts = 3;
  /// Advisory backoff on router-generated refusals (no backend available,
  /// connection cap, full park queue). Backend-generated overloads pass
  /// through with the backend's own value.
  int retry_after_ms = 50;
  /// Bound on the async mirror queue; an enqueue beyond it is dropped and
  /// counted (`mirror_dropped`) — mirroring must never apply backpressure
  /// to the answer path. 0 disables mirroring entirely.
  std::size_t mirror_queue_depth = 256;
  /// Requests allowed to park in the queue-with-timeout at once; 0
  /// (default) disables parking — refusals are immediate.
  int queue_depth = 0;
  /// How long a parked request keeps re-attempting placement before it
  /// expires (`err deadline_exceeded` / relayed shed advisory).
  int queue_timeout_ms = 250;
  /// Re-attempt cadence while parked.
  int queue_poll_ms = 5;
  /// ClientOptions for every backend link (connect budget, request retry).
  serve::ClientOptions client;
  /// Idle connections retained per backend pool.
  std::size_t pool_max_idle = 8;
  /// Dispatch-pool threads in the router's SocketServer. Forwarding
  /// blocks a pool thread on backend I/O (and a parked request occupies
  /// one for up to queue_timeout_ms), so this bounds concurrent
  /// forwards; <= 0 keeps the SocketServer default.
  int dispatch_threads = 0;
};

struct RouterStats {
  std::uint64_t forwarded = 0;         // requests relayed to a backend
  std::uint64_t reroutes = 0;          // retries on a different backend
  std::uint64_t replica_hits = 0;      // answered by a non-primary owner
  std::uint64_t mirrored = 0;          // mirror replays answered ok
  std::uint64_t mirror_dropped = 0;    // mirror enqueues/replays lost
  std::uint64_t queued = 0;            // requests that parked in the queue
  std::uint64_t queued_timeouts = 0;   // parked requests that expired
  std::uint64_t no_backend_errors = 0; // ring empty / attempts exhausted
  std::uint64_t probes = 0;            // health probes sent
  std::uint64_t backends_failed = 0;   // transitions healthy -> unhealthy
  std::uint64_t backends_revived = 0;  // transitions unhealthy -> healthy
  int backends_total = 0;
  int backends_healthy = 0;            // healthy and not drained
};

class Router {
 public:
  explicit Router(RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Register a backend worker reachable at `socket_path` and place it on
  /// the ring with `weight` x vnodes virtual points (heterogeneous
  /// machines get proportional key shares). Names must be unique; throws
  /// util::CheckError on a dup or non-positive weight.
  void add_backend(const std::string& name, const std::string& socket_path,
                   double weight = 1.0) EXCLUDES(mu_);

  /// Remove / restore a backend's ring membership without forgetting it.
  /// Unknown names return false.
  bool drain(const std::string& name) EXCLUDES(mu_);
  bool undrain(const std::string& name) EXCLUDES(mu_);

  /// Dispatch one request line: admin verbs answered locally, score and
  /// recover forwarded to the bench's ring owner. Never throws. Sets
  /// *quit on a quit request.
  std::string handle_line(const std::string& line, bool* quit);

  /// Binary-side dispatch: score/recover frames are relayed to the ring
  /// owner byte-for-byte (Frame.raw, never re-encoded, so backend overload
  /// and degraded semantics pass through untouched); stats/health/help/
  /// quit are answered locally as frames. Returns the complete response
  /// frame bytes. Never throws.
  std::string handle_frame(const wire::Frame& frame, bool* close);

  /// The backend name currently owning `bench`, "" when the ring is empty.
  /// What the placement tests and the kill-drill assert against.
  std::string backend_for(const std::string& bench) const EXCLUDES(mu_);

  /// The bench's owner list in failover order (owners_for(b)[0] ==
  /// backend_for(b)); at most `replicas` names, fewer when the ring is
  /// smaller.
  std::vector<std::string> owners_for(const std::string& bench) const
      EXCLUDES(mu_);

  /// Extra per-backend text appended to `backends` output lines (the route
  /// CLI wires the supervisor in here so `backends` shows pid= and
  /// restarts=). Called with the backend name; return "" for nothing.
  void set_backend_info(std::function<std::string(const std::string&)> info)
      EXCLUDES(mu_);

  /// Start / stop the background health prober (no-op when
  /// probe_interval_ms <= 0). stop_probes() is idempotent and also runs on
  /// destruction.
  void start_probes();
  void stop_probes();

  /// Probe every backend once, synchronously: evict newly dead backends,
  /// revive answering ones. What the prober thread calls each tick;
  /// exposed so tests can force a transition without sleeping.
  void probe_once() EXCLUDES(mu_);

  /// Block until the mirror queue is empty and the in-flight replay (if
  /// any) finished, or `timeout_ms` elapsed; true when drained. What the
  /// failover tests and the kill-drill call between "prime" and "kill" so
  /// warmth assertions do not race the async mirror.
  bool wait_mirror_idle(int timeout_ms) EXCLUDES(mirror_mu_);

  RouterStats stats() const EXCLUDES(mu_);

  /// Serve the router protocol on an AF_UNIX socket (blocks until stop()).
  /// Also starts the prober.
  void run_unix_socket(const std::string& path);
  void stop();

 private:
  struct Backend {
    std::string name;
    std::string socket_path;
    double weight = 1.0;
    std::unique_ptr<serve::ClientPool> pool;       // text connections
    std::unique_ptr<serve::ClientPool> wire_pool;  // negotiated binary
    std::atomic<bool> healthy{true};
    std::atomic<bool> drained{false};
  };

  /// One mirror replay: the payload re-sent to the secondary owner.
  struct MirrorItem {
    std::string target;   // backend name (resolved again at replay time)
    std::string payload;  // text line or raw frame bytes
    bool is_frame = false;
  };

  /// Per-encoding hooks for the shared forward loop: how to reach a
  /// backend, recognise a shed answer, and build the router's refusals.
  struct ForwardCodec {
    std::function<bool(Backend&, const std::string&, std::string*)> send;
    std::function<bool(const std::string&)> is_overloaded;
    std::function<std::string()> no_backend;
    std::function<std::string()> queue_full;
    std::function<std::string()> deadline_exceeded;
  };

  /// The one forwarding state machine behind both encodings: owner-list
  /// failover, mirror enqueue, queue-with-timeout parking.
  std::string forward_common(const std::string& payload,
                             const std::string& bench, bool mirrorable,
                             bool is_frame, const ForwardCodec& codec)
      EXCLUDES(mu_);

  /// Forward `line` to the owners of `bench` (text codec).
  std::string forward(const std::string& line, const std::string& bench,
                      bool mirrorable) EXCLUDES(mu_);

  /// forward()'s binary twin: relay raw frame bytes to the owners of
  /// `bench`; `verb` only shapes the local refusals.
  std::string forward_frame(const std::string& raw, const std::string& bench,
                            wire::Verb verb, bool mirrorable) EXCLUDES(mu_);

  /// Snapshot the bench's owner list as live Backend pointers, purging
  /// ring entries with no backend record (ring/map divergence must not
  /// throw out of the dispatch path). Empty when the ring is empty.
  std::vector<Backend*> snapshot_owners(const std::string& bench)
      EXCLUDES(mu_);

  /// One request over one backend's pool; retries once on a fresh socket
  /// before giving up. Returns false when the backend is unreachable.
  bool try_backend(Backend& backend, const std::string& line,
                   std::string* reply);

  /// try_backend over the binary pool; *reply gets the backend's response
  /// frame verbatim (raw bytes plus the decoded header/payload).
  bool try_backend_frame(Backend& backend, const std::string& raw,
                         wire::Frame* reply);

  /// Queue the payload for async replay against the first healthy owner
  /// other than `answered` — drops (counted) when the queue is full.
  void enqueue_mirror(const std::string& payload, bool is_frame,
                      const std::vector<Backend*>& owners,
                      std::size_t answered) EXCLUDES(mirror_mu_);

  void start_mirror();
  void stop_mirror();
  void mirror_loop() EXCLUDES(mirror_mu_);
  /// Replay one mirror item; true when the target answered ok.
  bool replay_mirror(const MirrorItem& item) EXCLUDES(mu_);

  bool acquire_queue_slot();

  void mark_unhealthy(const std::string& name) EXCLUDES(mu_);
  void revive(const std::string& name) EXCLUDES(mu_);

  std::string format_backends() const EXCLUDES(mu_);
  std::string format_owners(const std::string& bench) const EXCLUDES(mu_);
  std::string format_stats() const EXCLUDES(mu_);
  std::string format_health() const EXCLUDES(mu_);

  RouterOptions options_;
  serve::SocketServer socket_server_;

  // Guards ring_ and backends_ *membership*; Backend objects themselves
  // are never erased, so raw Backend* taken under the lock stay valid
  // after it is released (forward/probe_once/mirror rely on this).
  mutable util::Mutex mu_{"router.state"};
  HashRing ring_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Backend>> backends_ GUARDED_BY(mu_);
  std::function<std::string(const std::string&)> backend_info_
      GUARDED_BY(mu_);

  std::thread prober_;
  std::atomic<bool> probing_{false};

  // Mirror queue: leaf lock, never held together with mu_ (enqueue and
  // replay each take exactly one of the two at a time).
  mutable util::Mutex mirror_mu_{"router.mirror"};
  util::CondVar mirror_cv_;
  std::deque<MirrorItem> mirror_queue_ GUARDED_BY(mirror_mu_);
  bool mirror_stop_ GUARDED_BY(mirror_mu_) = false;
  bool mirror_busy_ GUARDED_BY(mirror_mu_) = false;
  std::thread mirror_worker_;

  std::atomic<int> queue_len_{0};  // live occupancy of the park queue

  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> reroutes_{0};
  std::atomic<std::uint64_t> replica_hits_{0};
  std::atomic<std::uint64_t> mirrored_{0};
  std::atomic<std::uint64_t> mirror_dropped_{0};
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> queued_timeouts_{0};
  std::atomic<std::uint64_t> no_backend_errors_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> backends_failed_{0};
  std::atomic<std::uint64_t> backends_revived_{0};
};

}  // namespace rebert::router
