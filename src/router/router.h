// Router — one endpoint in front of a ring of serve backends.
//
// Speaks the same newline protocol as a single `rebert_cli serve` daemon
// (protocol.h), so clients cannot tell a router from a backend: score and
// recover lines are consistent-hashed on their <bench> token onto a
// HashRing of backend worker processes (each a standard serve daemon
// reached through a serve::ClientPool) and forwarded verbatim; the
// backend's reply — including `err overloaded retry_after_ms=<n>` and
// `degraded=structural` tags — passes through untouched. Hashing on the
// bench name pins each bench's context (netlized, tokenized, cached
// scores) to one backend, which is what makes the fan-out scale: no
// backend pays for benches it never sees.
//
// Health: a backend whose connection dies mid-request is retried once on a
// fresh socket (pooled connections go stale when a backend restarts), then
// marked unhealthy and removed from the ring — the request transparently
// reroutes to the next owner (counted in `reroutes`). A background prober
// sends `health` to every backend each probe interval, evicting newly dead
// backends and re-adding revived ones, so a restarted worker re-takes
// exactly its old key range (consistent hashing is deterministic in the
// node name).
//
// Admin verbs (answered locally, never forwarded):
//   backends            one line listing each backend's name, path, state
//   drain <name>        remove from the ring (for maintenance); undrain
//   undrain <name>      to put it back
//   stats / health      router-level counters and ring state
//   help / quit         as a backend, plus the admin verbs
//
// The router also accepts the binary wire protocol (wire/frame.h):
// score/recover request frames are relayed to the owning backend
// byte-for-byte over a second, binary-negotiated connection pool — the
// router never re-encodes a frame in either direction, so backend
// overload and degraded flags arrive exactly as sent. The text admin
// verbs stay text-only.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/hash_ring.h"
#include "serve/client_pool.h"
#include "serve/socket_server.h"
#include "util/mutex.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace rebert::router {

struct RouterOptions {
  /// Virtual nodes per backend on the ring (see hash_ring.h).
  int vnodes = 64;
  /// Health probe cadence; <= 0 disables the prober thread.
  int probe_interval_ms = 200;
  /// Distinct backends tried (after rehashing) before a request fails.
  int forward_attempts = 3;
  /// Advisory backoff on router-generated refusals (no backend available,
  /// connection cap). Backend-generated overloads pass through with the
  /// backend's own value.
  int retry_after_ms = 50;
  /// ClientOptions for every backend link (connect budget, request retry).
  serve::ClientOptions client;
  /// Idle connections retained per backend pool.
  std::size_t pool_max_idle = 8;
  /// Dispatch-pool threads in the router's SocketServer. Forwarding
  /// blocks a pool thread on backend I/O, so this bounds concurrent
  /// forwards; <= 0 keeps the SocketServer default.
  int dispatch_threads = 0;
};

struct RouterStats {
  std::uint64_t forwarded = 0;         // requests relayed to a backend
  std::uint64_t reroutes = 0;          // retries on a different backend
  std::uint64_t no_backend_errors = 0; // ring empty / attempts exhausted
  std::uint64_t probes = 0;            // health probes sent
  std::uint64_t backends_failed = 0;   // transitions healthy -> unhealthy
  std::uint64_t backends_revived = 0;  // transitions unhealthy -> healthy
  int backends_total = 0;
  int backends_healthy = 0;            // healthy and not drained
};

class Router {
 public:
  explicit Router(RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Register a backend worker reachable at `socket_path` and place it on
  /// the ring. Names must be unique; throws util::CheckError on a dup.
  void add_backend(const std::string& name, const std::string& socket_path)
      EXCLUDES(mu_);

  /// Remove / restore a backend's ring membership without forgetting it.
  /// Unknown names return false.
  bool drain(const std::string& name) EXCLUDES(mu_);
  bool undrain(const std::string& name) EXCLUDES(mu_);

  /// Dispatch one request line: admin verbs answered locally, score and
  /// recover forwarded to the bench's ring owner. Never throws. Sets
  /// *quit on a quit request.
  std::string handle_line(const std::string& line, bool* quit);

  /// Binary-side dispatch: score/recover frames are relayed to the ring
  /// owner byte-for-byte (Frame.raw, never re-encoded, so backend overload
  /// and degraded semantics pass through untouched); stats/health/help/
  /// quit are answered locally as frames. Returns the complete response
  /// frame bytes. Never throws.
  std::string handle_frame(const wire::Frame& frame, bool* close);

  /// The backend name currently owning `bench`, "" when the ring is empty.
  /// What the placement tests and the kill-drill assert against.
  std::string backend_for(const std::string& bench) const EXCLUDES(mu_);

  /// Extra per-backend text appended to `backends` output lines (the route
  /// CLI wires the supervisor in here so `backends` shows pid= and
  /// restarts=). Called with the backend name; return "" for nothing.
  void set_backend_info(std::function<std::string(const std::string&)> info)
      EXCLUDES(mu_);

  /// Start / stop the background health prober (no-op when
  /// probe_interval_ms <= 0). stop_probes() is idempotent and also runs on
  /// destruction.
  void start_probes();
  void stop_probes();

  /// Probe every backend once, synchronously: evict newly dead backends,
  /// revive answering ones. What the prober thread calls each tick;
  /// exposed so tests can force a transition without sleeping.
  void probe_once() EXCLUDES(mu_);

  RouterStats stats() const EXCLUDES(mu_);

  /// Serve the router protocol on an AF_UNIX socket (blocks until stop()).
  /// Also starts the prober.
  void run_unix_socket(const std::string& path);
  void stop();

 private:
  struct Backend {
    std::string name;
    std::string socket_path;
    std::unique_ptr<serve::ClientPool> pool;       // text connections
    std::unique_ptr<serve::ClientPool> wire_pool;  // negotiated binary
    std::atomic<bool> healthy{true};
    std::atomic<bool> drained{false};
  };

  /// Forward `line` to the owner of `bench`, rehashing across failures.
  std::string forward(const std::string& line, const std::string& bench)
      EXCLUDES(mu_);

  /// forward()'s binary twin: relay raw frame bytes to the owner of
  /// `bench`; `verb` only shapes the local no_backend refusal.
  std::string forward_frame(const std::string& raw, const std::string& bench,
                            wire::Verb verb) EXCLUDES(mu_);

  /// One request over one backend's pool; retries once on a fresh socket
  /// before giving up. Returns false when the backend is unreachable.
  bool try_backend(Backend& backend, const std::string& line,
                   std::string* reply);

  /// try_backend over the binary pool; *reply_frame gets the backend's
  /// response frame verbatim.
  bool try_backend_frame(Backend& backend, const std::string& raw,
                         std::string* reply_frame);

  void mark_unhealthy(const std::string& name) EXCLUDES(mu_);
  void revive(const std::string& name) EXCLUDES(mu_);

  std::string format_backends() const EXCLUDES(mu_);
  std::string format_stats() const EXCLUDES(mu_);
  std::string format_health() const EXCLUDES(mu_);

  RouterOptions options_;
  serve::SocketServer socket_server_;

  // Guards ring_ and backends_ *membership*; Backend objects themselves
  // are never erased, so raw Backend* taken under the lock stay valid
  // after it is released (forward/probe_once rely on this).
  mutable util::Mutex mu_{"router.state"};
  HashRing ring_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Backend>> backends_ GUARDED_BY(mu_);
  std::function<std::string(const std::string&)> backend_info_
      GUARDED_BY(mu_);

  std::thread prober_;
  std::atomic<bool> probing_{false};

  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> reroutes_{0};
  std::atomic<std::uint64_t> no_backend_errors_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> backends_failed_{0};
  std::atomic<std::uint64_t> backends_revived_{0};
};

}  // namespace rebert::router
