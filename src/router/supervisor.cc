#include "router/supervisor.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "util/backoff.h"
#include "util/check.h"
#include "util/logging.h"

namespace rebert::router {

BackendSupervisor::BackendSupervisor(SupervisorOptions options)
    : options_(options) {}

BackendSupervisor::~BackendSupervisor() { stop(); }

void BackendSupervisor::add(const std::string& name,
                            std::vector<std::string> argv) {
  REBERT_CHECK_MSG(!argv.empty(), "worker '" + name + "' needs an argv");
  util::MutexLock lock(mu_);
  REBERT_CHECK_MSG(workers_.find(name) == workers_.end(),
                   "duplicate worker '" + name + "'");
  Worker worker;
  worker.name = name;
  worker.argv = std::move(argv);
  workers_.emplace(name, std::move(worker));
}

void BackendSupervisor::spawn(Worker* worker) {
  // The parent may hold buffered stdio; flush so the child does not
  // double-emit it on exec failure.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  REBERT_CHECK_MSG(pid >= 0, "fork() failed for worker '" + worker->name +
                                 "'");
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(worker->argv.size() + 1);
    for (std::string& arg : worker->argv)
      argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    // Exec failed: nothing sane to do in the child but report and die
    // without running parent atexit handlers.
    std::perror("execv");
    ::_exit(127);
  }
  worker->pid = pid;
  worker->spawned_at = std::chrono::steady_clock::now();
  LOG_INFO << "supervisor: worker " << worker->name << " running as pid "
           << pid;
}

void BackendSupervisor::start() {
  util::MutexLock lock(mu_);
  for (auto& [name, worker] : workers_) {
    (void)name;
    worker.want_running = true;
    if (worker.pid < 0) spawn(&worker);
  }
}

int BackendSupervisor::poll_once() {
  util::MutexLock lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  int reaped = 0;
  for (auto& [name, worker] : workers_) {
    (void)name;
    if (worker.pid >= 0) {
      int status = 0;
      const pid_t got = ::waitpid(worker.pid, &status, WNOHANG);
      if (got == worker.pid) {
        ++reaped;
        const auto uptime =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - worker.spawned_at).count();
        // A long-enough run forgives earlier crashes; a quick death
        // escalates the backoff.
        if (uptime >= options_.healthy_uptime_ms)
          worker.consecutive_failures = 0;
        ++worker.consecutive_failures;
        const int shift = worker.consecutive_failures - 1;
        std::int64_t backoff = options_.restart_backoff_ms;
        // Cap the shift before shifting so a long crash loop cannot
        // overflow into an instant (or negative) delay.
        for (int i = 0; i < shift && backoff < options_.max_backoff_ms; ++i)
          backoff <<= 1;
        if (backoff > options_.max_backoff_ms)
          backoff = options_.max_backoff_ms;
        // Seeded per (worker, failure-streak): simultaneous deaths respawn
        // staggered, yet every run replays the same stagger.
        backoff = util::apply_backoff_jitter(
            static_cast<int>(backoff),
            util::fnv1a64(worker.name.data(), worker.name.size()),
            static_cast<std::uint64_t>(worker.consecutive_failures),
            options_.restart_jitter_pct);
        worker.respawn_after =
            now + std::chrono::milliseconds(backoff);
        LOG_WARN << "supervisor: worker " << worker.name << " (pid "
                 << worker.pid << ") exited with status " << status
                 << " after " << uptime << " ms; respawn in " << backoff
                 << " ms";
        worker.pid = -1;
      }
    }
    // Respawn only workers that already ran once (start() owns the first
    // spawn) and whose backoff has elapsed.
    if (worker.pid < 0 && worker.want_running &&
        worker.spawned_at.time_since_epoch().count() != 0 &&
        worker.respawn_after <= now) {
      spawn(&worker);
      ++worker.restarts;
    }
  }
  return reaped;
}

void BackendSupervisor::stop() {
  std::vector<pid_t> pids;
  {
    util::MutexLock lock(mu_);
    for (auto& [name, worker] : workers_) {
      (void)name;
      worker.want_running = false;
      if (worker.pid >= 0) pids.push_back(worker.pid);
    }
  }
  if (pids.empty()) return;
  for (const pid_t pid : pids) ::kill(pid, SIGTERM);
  // Grace period for clean shutdown (socket unlink, cache snapshot), then
  // force. Poll instead of one long sleep so a fast exit returns fast.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  std::vector<pid_t> alive = pids;
  while (!alive.empty() && std::chrono::steady_clock::now() < deadline) {
    std::vector<pid_t> still;
    for (const pid_t pid : alive) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) != pid) still.push_back(pid);
    }
    alive = std::move(still);
    if (!alive.empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (const pid_t pid : alive) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  util::MutexLock lock(mu_);
  for (auto& [name, worker] : workers_) {
    (void)name;
    worker.pid = -1;
  }
}

pid_t BackendSupervisor::pid_of(const std::string& name) const {
  util::MutexLock lock(mu_);
  const auto it = workers_.find(name);
  return it == workers_.end() ? -1 : it->second.pid;
}

std::uint64_t BackendSupervisor::restarts_of(const std::string& name) const {
  util::MutexLock lock(mu_);
  const auto it = workers_.find(name);
  return it == workers_.end() ? 0 : it->second.restarts;
}

std::size_t BackendSupervisor::size() const {
  util::MutexLock lock(mu_);
  return workers_.size();
}

}  // namespace rebert::router
