#include "router/router.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>
#include <utility>

#include "serve/protocol.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace rebert::router {

namespace {

/// One line, no trailing newline — same discipline as ServeLoop.
std::string single_line(std::string text) {
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      socket_server_(serve::SocketServer::Callbacks{
          /*handle_line=*/[this](const std::string& line, bool* quit) {
            return handle_line(line, quit);
          },
          /*is_blank=*/[](const std::string& line) {
            return util::trim(line).empty() || util::trim(line)[0] == '#';
          },
          /*overload_line=*/[this] {
            return serve::format_overloaded(options_.retry_after_ms);
          },
          /*on_answered=*/nullptr,
          /*on_shutdown=*/nullptr,
          /*handle_frame=*/[this](const wire::Frame& frame, bool* close) {
            return handle_frame(frame, close);
          },
          /*overload_frame=*/[this] {
            return wire::encode_response(
                wire::overloaded_response(options_.retry_after_ms));
          }}),
      ring_(options_.vnodes) {
  if (options_.dispatch_threads > 0)
    socket_server_.set_dispatch_threads(options_.dispatch_threads);
  start_mirror();
}

Router::~Router() {
  stop_probes();
  stop_mirror();
}

void Router::add_backend(const std::string& name,
                         const std::string& socket_path, double weight) {
  util::MutexLock lock(mu_);
  REBERT_CHECK_MSG(backends_.find(name) == backends_.end(),
                   "duplicate backend '" + name + "'");
  auto backend = std::make_unique<Backend>();
  backend->name = name;
  backend->socket_path = socket_path;
  backend->weight = weight;
  backend->pool = std::make_unique<serve::ClientPool>(
      socket_path, options_.client, options_.pool_max_idle);
  // A second pool of binary-negotiated connections for frame relay; built
  // lazily on first use like any pooled connection, so a text-only backend
  // deployment never pays for it.
  serve::ClientOptions wire_options = options_.client;
  wire_options.binary = true;
  backend->wire_pool = std::make_unique<serve::ClientPool>(
      socket_path, wire_options, options_.pool_max_idle);
  // Ring first: add() validates the weight, and a throw must leave the
  // backend map untouched.
  ring_.add(name, weight);
  backends_.emplace(name, std::move(backend));
  LOG_INFO << "router: backend " << name << " at " << socket_path
           << " joined the ring (weight " << weight << ")";
}

bool Router::drain(const std::string& name) {
  util::MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return false;
  it->second->drained.store(true, std::memory_order_relaxed);
  ring_.remove(name);
  LOG_INFO << "router: backend " << name << " drained";
  return true;
}

bool Router::undrain(const std::string& name) {
  util::MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return false;
  it->second->drained.store(false, std::memory_order_relaxed);
  if (it->second->healthy.load(std::memory_order_relaxed))
    ring_.add(name, it->second->weight);
  LOG_INFO << "router: backend " << name << " undrained";
  return true;
}

std::string Router::backend_for(const std::string& bench) const {
  util::MutexLock lock(mu_);
  return ring_.node_for(bench);
}

std::vector<std::string> Router::owners_for(const std::string& bench) const {
  util::MutexLock lock(mu_);
  return ring_.owners(bench, std::max(1, options_.replicas));
}

void Router::set_backend_info(
    std::function<std::string(const std::string&)> info) {
  util::MutexLock lock(mu_);
  backend_info_ = std::move(info);
}

void Router::mark_unhealthy(const std::string& name) {
  util::MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return;
  if (!it->second->healthy.exchange(false, std::memory_order_relaxed))
    return;  // already out
  ring_.remove(name);
  // Pooled connections to a dead backend are all stale; drop them so a
  // revival starts from fresh sockets.
  it->second->pool->clear_idle();
  it->second->wire_pool->clear_idle();
  backends_failed_.fetch_add(1, std::memory_order_relaxed);
  LOG_WARN << "router: backend " << name
           << " marked unhealthy; ring rebalanced";
}

void Router::revive(const std::string& name) {
  util::MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return;
  if (it->second->healthy.exchange(true, std::memory_order_relaxed))
    return;  // was already healthy
  if (!it->second->drained.load(std::memory_order_relaxed))
    ring_.add(name, it->second->weight);
  backends_revived_.fetch_add(1, std::memory_order_relaxed);
  LOG_INFO << "router: backend " << name << " revived; key range restored";
}

bool Router::try_backend(Backend& backend, const std::string& line,
                         std::string* reply) {
  serve::ClientPool::Lease lease = backend.pool->acquire();
  if (lease) {
    try {
      *reply = lease->request(line);
      return true;
    } catch (const std::exception&) {
      // A pooled connection can be stale (backend restarted since it was
      // idle); one fresh socket distinguishes "stale connection" from
      // "dead backend" before the ring gets rebalanced.
      lease.discard();
    }
  }
  serve::ClientPool::Lease fresh = backend.pool->acquire_fresh();
  if (!fresh) return false;
  try {
    *reply = fresh->request(line);
    return true;
  } catch (const std::exception&) {
    fresh.discard();
    return false;
  }
}

bool Router::try_backend_frame(Backend& backend, const std::string& raw,
                               wire::Frame* reply) {
  serve::ClientPool::Lease lease = backend.wire_pool->acquire();
  if (lease) {
    try {
      *reply = lease->request_frame(raw);
      return true;
    } catch (const std::exception&) {
      // Same stale-vs-dead discipline as the text path: one fresh socket
      // (with a fresh hello handshake) decides before the ring rebalances.
      lease.discard();
    }
  }
  serve::ClientPool::Lease fresh = backend.wire_pool->acquire_fresh();
  if (!fresh) return false;
  try {
    *reply = fresh->request_frame(raw);
    return true;
  } catch (const std::exception&) {
    fresh.discard();
    return false;
  }
}

std::vector<Router::Backend*> Router::snapshot_owners(
    const std::string& bench) {
  util::MutexLock lock(mu_);
  for (;;) {
    const std::vector<std::string> names =
        ring_.owners(bench, std::max(1, options_.replicas));
    std::vector<Backend*> owners;
    owners.reserve(names.size());
    bool diverged = false;
    for (const std::string& name : names) {
      const auto it = backends_.find(name);
      if (it == backends_.end()) {
        // A ring entry with no backend record is a membership bug, but it
        // must degrade to a purge-and-replace, never to std::out_of_range
        // escaping the dispatch path mid-request.
        LOG_WARN << "router: purging ring entry '" << name
                 << "' with no backend record";
        ring_.remove(name);
        diverged = true;
        break;
      }
      owners.push_back(it->second.get());
    }
    if (!diverged) return owners;  // possibly empty: ring was/became empty
  }
}

bool Router::acquire_queue_slot() {
  int current = queue_len_.load(std::memory_order_relaxed);
  while (current < options_.queue_depth) {
    if (queue_len_.compare_exchange_weak(current, current + 1,
                                         std::memory_order_relaxed))
      return true;
  }
  return false;
}

std::string Router::forward_common(const std::string& payload,
                                   const std::string& bench, bool mirrorable,
                                   bool is_frame, const ForwardCodec& codec) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.queue_timeout_ms);
  bool parked = false;
  bool saw_shed = false;
  std::string last_shed;
  const auto leave = [&](std::string reply) {
    if (parked) queue_len_.fetch_sub(1, std::memory_order_relaxed);
    return reply;
  };
  for (;;) {
    // One placement round: walk the owner list in failover order. A dead
    // owner shrinks the ring (mark_unhealthy) and earns another pass over
    // the re-snapshotted list; a shed answer is remembered and the next —
    // mirror-warmed — owner is tried instead.
    for (int attempt = 0; attempt < options_.forward_attempts; ++attempt) {
      const std::vector<Backend*> owners = snapshot_owners(bench);
      if (owners.empty()) break;  // ring empty: park or refuse below
      bool ring_changed = false;
      for (std::size_t i = 0; i < owners.size(); ++i) {
        std::string reply;
        if (!codec.send(*owners[i], payload, &reply)) {
          mark_unhealthy(owners[i]->name);
          reroutes_.fetch_add(1, std::memory_order_relaxed);
          ring_changed = true;
          continue;
        }
        if (codec.is_overloaded(reply)) {
          saw_shed = true;
          last_shed = std::move(reply);  // freshest advisory wins
          continue;
        }
        forwarded_.fetch_add(1, std::memory_order_relaxed);
        if (i > 0) replica_hits_.fetch_add(1, std::memory_order_relaxed);
        if (mirrorable) enqueue_mirror(payload, is_frame, owners, i);
        return leave(std::move(reply));
      }
      // Every live owner shed: re-walking the same list immediately would
      // spin, so fall through to the park queue (or the passthrough).
      if (!ring_changed) break;
    }
    if (options_.queue_depth <= 0) {
      if (saw_shed) {
        // Saturation, not absence: relay the backend's own advisory.
        forwarded_.fetch_add(1, std::memory_order_relaxed);
        return leave(std::move(last_shed));
      }
      no_backend_errors_.fetch_add(1, std::memory_order_relaxed);
      return leave(codec.no_backend());
    }
    if (!parked) {
      if (!acquire_queue_slot())
        return leave(codec.queue_full());  // bounded: shed at the door
      parked = true;
      queued_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      queued_timeouts_.fetch_add(1, std::memory_order_relaxed);
      if (saw_shed) {
        forwarded_.fetch_add(1, std::memory_order_relaxed);
        return leave(std::move(last_shed));
      }
      return leave(codec.deadline_exceeded());
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    std::this_thread::sleep_for(std::chrono::milliseconds(std::min<long long>(
        remaining,
        static_cast<long long>(std::max(1, options_.queue_poll_ms)))));
  }
}

std::string Router::forward(const std::string& line, const std::string& bench,
                            bool mirrorable) {
  ForwardCodec codec;
  codec.send = [this](Backend& backend, const std::string& payload,
                      std::string* reply) {
    return try_backend(backend, payload, reply);
  };
  codec.is_overloaded = [](const std::string& reply) {
    return util::starts_with(reply, "err overloaded");
  };
  codec.no_backend = [this] {
    return serve::format_error("no_backend retry_after_ms=" +
                               std::to_string(options_.retry_after_ms));
  };
  codec.queue_full = [this] {
    return serve::format_overloaded(options_.retry_after_ms);
  };
  codec.deadline_exceeded = [] {
    return serve::format_error("deadline_exceeded");
  };
  return forward_common(line, bench, mirrorable, /*is_frame=*/false, codec);
}

std::string Router::forward_frame(const std::string& raw,
                                  const std::string& bench, wire::Verb verb,
                                  bool mirrorable) {
  // forward_common moves reply bytes around as strings; `last` keeps the
  // decoded twin of the most recent reply so is_overloaded can inspect it
  // without re-parsing the frame. The codec never outlives this call.
  wire::Frame last;
  ForwardCodec codec;
  codec.send = [this, &last](Backend& backend, const std::string& payload,
                             std::string* reply) {
    if (!try_backend_frame(backend, payload, &last)) return false;
    *reply = last.raw;  // verbatim: overload / degraded flags included
    return true;
  };
  codec.is_overloaded = [&last](const std::string&) {
    if (last.type != wire::FrameType::kResponse) return false;
    wire::Response response;
    std::string error;
    return wire::decode_response_payload(last.payload, &response, &error) &&
           response.code == wire::ErrorCode::kOverloaded;
  };
  codec.no_backend = [this, verb] {
    wire::Response refusal =
        wire::no_backend_response(options_.retry_after_ms);
    refusal.verb = verb;
    return wire::encode_response(refusal);
  };
  codec.queue_full = [this, verb] {
    wire::Response refusal =
        wire::overloaded_response(options_.retry_after_ms);
    refusal.verb = verb;
    return wire::encode_response(refusal);
  };
  codec.deadline_exceeded = [verb] {
    return wire::encode_response(wire::deadline_response(verb));
  };
  return forward_common(raw, bench, mirrorable, /*is_frame=*/true, codec);
}

void Router::enqueue_mirror(const std::string& payload, bool is_frame,
                            const std::vector<Backend*>& owners,
                            std::size_t answered) {
  if (options_.mirror_queue_depth == 0 || options_.replicas <= 1) return;
  // Warm the first live owner that did not answer (normally the secondary;
  // the primary itself when a failover answered from the secondary).
  Backend* target = nullptr;
  for (std::size_t i = 0; i < owners.size(); ++i) {
    if (i == answered) continue;
    if (owners[i]->healthy.load(std::memory_order_relaxed) &&
        !owners[i]->drained.load(std::memory_order_relaxed)) {
      target = owners[i];
      break;
    }
  }
  if (target == nullptr) return;  // nobody to warm — nothing was lost
  util::MutexLock lock(mirror_mu_);
  if (mirror_stop_) return;
  if (mirror_queue_.size() >= options_.mirror_queue_depth) {
    // Drop, never block: mirroring is strictly best-effort and must not
    // apply backpressure to the answer path.
    mirror_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  mirror_queue_.push_back(MirrorItem{target->name, payload, is_frame});
  mirror_cv_.notify_all();
}

bool Router::replay_mirror(const MirrorItem& item) {
  Backend* backend = nullptr;
  {
    util::MutexLock lock(mu_);
    const auto it = backends_.find(item.target);
    if (it != backends_.end() &&
        it->second->healthy.load(std::memory_order_relaxed) &&
        !it->second->drained.load(std::memory_order_relaxed))
      backend = it->second.get();
  }
  if (backend == nullptr) return false;  // target died since the enqueue
  // A replay failure is just a lost warm-up: membership transitions stay
  // the prober's job, so the mirror thread never rebalances the ring.
  if (item.is_frame) {
    wire::Frame reply;
    if (!try_backend_frame(*backend, item.payload, &reply)) return false;
    if (reply.type != wire::FrameType::kResponse) return false;
    wire::Response response;
    std::string error;
    return wire::decode_response_payload(reply.payload, &response, &error) &&
           response.status == wire::Status::kOk;
  }
  std::string reply;
  return try_backend(*backend, item.payload, &reply) &&
         util::starts_with(reply, "ok");
}

void Router::mirror_loop() {
  for (;;) {
    MirrorItem item;
    {
      util::MutexLock lock(mirror_mu_);
      while (mirror_queue_.empty() && !mirror_stop_)
        mirror_cv_.wait(mirror_mu_);
      if (mirror_stop_) {
        // Shutdown drops the backlog (counted): replaying against a fleet
        // that is itself shutting down would only stall the destructor.
        mirror_dropped_.fetch_add(mirror_queue_.size(),
                                  std::memory_order_relaxed);
        mirror_queue_.clear();
        return;
      }
      item = std::move(mirror_queue_.front());
      mirror_queue_.pop_front();
      mirror_busy_ = true;
    }
    const bool warmed = replay_mirror(item);
    (warmed ? mirrored_ : mirror_dropped_)
        .fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(mirror_mu_);
      mirror_busy_ = false;
      mirror_cv_.notify_all();  // wake wait_mirror_idle watchers
    }
  }
}

bool Router::wait_mirror_idle(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::MutexLock lock(mirror_mu_);
  while (!mirror_queue_.empty() || mirror_busy_) {
    if (!mirror_cv_.wait_until(mirror_mu_, deadline))
      return mirror_queue_.empty() && !mirror_busy_;
  }
  return true;
}

void Router::start_mirror() {
  if (options_.mirror_queue_depth == 0 || options_.replicas <= 1) return;
  mirror_worker_ = std::thread([this] { mirror_loop(); });
}

void Router::stop_mirror() {
  {
    util::MutexLock lock(mirror_mu_);
    mirror_stop_ = true;
    mirror_cv_.notify_all();
  }
  if (mirror_worker_.joinable()) mirror_worker_.join();
}

std::string Router::handle_frame(const wire::Frame& frame, bool* close) {
  wire::Request request;
  std::string error;
  if (!wire::decode_request_payload(frame.payload, &request, &error)) {
    // Answer this request with an error frame; the connection survives
    // (the frame itself checksummed clean, only the message was bad).
    return wire::encode_response(
        wire::error_response(wire::Verb::kHelp, std::move(error)));
  }
  try {
    switch (request.verb) {
      case wire::Verb::kScore:
      case wire::Verb::kRecover:
        // Relay the exact bytes we received — never re-encode.
        return forward_frame(frame.raw, request.bench, request.verb,
                             request.verb == wire::Verb::kScore);
      case wire::Verb::kStats:
        return wire::encode_response(
            wire::ok_response(request.verb, format_stats()));
      case wire::Verb::kHealth:
        return wire::encode_response(
            wire::ok_response(request.verb, format_health()));
      case wire::Verb::kHelp:
        return wire::encode_response(wire::ok_response(
            request.verb,
            serve::help_text() +
                "; router: backends | owners <bench> | drain <name> | "
                "undrain <name>"));
      case wire::Verb::kQuit:
        if (close) *close = true;
        return wire::encode_response(
            wire::ok_response(request.verb, "bye"));
    }
    return wire::encode_response(
        wire::error_response(request.verb, "unreachable"));
  } catch (const std::exception& e) {
    return wire::encode_response(
        wire::error_response(request.verb, single_line(e.what())));
  }
}

std::string Router::handle_line(const std::string& line, bool* quit) {
  try {
    // Admin verbs first — they are router vocabulary, not protocol.h's.
    const std::vector<std::string> tokens =
        util::split_ws(util::trim(line));
    if (!tokens.empty()) {
      if (tokens[0] == "backends" && tokens.size() == 1)
        return serve::format_ok(format_backends());
      if (tokens[0] == "owners" && tokens.size() == 2)
        return serve::format_ok(format_owners(tokens[1]));
      if (tokens[0] == "drain" && tokens.size() == 2)
        return drain(tokens[1])
                   ? serve::format_ok("drained " + tokens[1])
                   : serve::format_error("unknown backend '" + tokens[1] +
                                         "'");
      if (tokens[0] == "undrain" && tokens.size() == 2)
        return undrain(tokens[1])
                   ? serve::format_ok("undrained " + tokens[1])
                   : serve::format_error("unknown backend '" + tokens[1] +
                                         "'");
    }
    const serve::Request request = serve::parse_request(line);
    switch (request.type) {
      case serve::RequestType::kScore:
      case serve::RequestType::kRecover:
        // Forward the raw line: the backend re-parses it, so model= and
        // deadline_ms= fields survive verbatim.
        return forward(line, request.bench,
                       request.type == serve::RequestType::kScore);
      case serve::RequestType::kStats:
        return serve::format_ok(format_stats());
      case serve::RequestType::kHealth:
        return serve::format_ok(format_health());
      case serve::RequestType::kHelp:
        return serve::format_ok(
            serve::help_text() +
            "; router: backends | owners <bench> | drain <name> | "
            "undrain <name>");
      case serve::RequestType::kQuit:
        if (quit) *quit = true;
        return serve::format_ok("bye");
      case serve::RequestType::kInvalid:
        return serve::format_error(request.error);
    }
    return serve::format_error("unreachable");
  } catch (const std::exception& e) {
    return serve::format_error(single_line(e.what()));
  }
}

std::string Router::format_backends() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  out << "backends=" << backends_.size();
  for (const auto& [name, backend] : backends_) {
    out << " | name=" << name << " path=" << backend->socket_path
        << " weight=" << backend->weight
        << " healthy=" << (backend->healthy.load(std::memory_order_relaxed)
                               ? 1 : 0)
        << " drained=" << (backend->drained.load(std::memory_order_relaxed)
                               ? 1 : 0);
    if (backend_info_) {
      const std::string extra = backend_info_(name);
      if (!extra.empty()) out << " " << extra;
    }
  }
  return out.str();
}

std::string Router::format_owners(const std::string& bench) const {
  const std::vector<std::string> owners = owners_for(bench);
  std::ostringstream out;
  out << "bench=" << bench << " replicas=" << owners.size() << " owners=";
  if (owners.empty()) {
    out << "none";
  } else {
    for (std::size_t i = 0; i < owners.size(); ++i) {
      if (i > 0) out << ",";
      out << owners[i];
    }
  }
  return out.str();
}

RouterStats Router::stats() const {
  RouterStats stats;
  stats.forwarded = forwarded_.load(std::memory_order_relaxed);
  stats.reroutes = reroutes_.load(std::memory_order_relaxed);
  stats.replica_hits = replica_hits_.load(std::memory_order_relaxed);
  stats.mirrored = mirrored_.load(std::memory_order_relaxed);
  stats.mirror_dropped = mirror_dropped_.load(std::memory_order_relaxed);
  stats.queued = queued_.load(std::memory_order_relaxed);
  stats.queued_timeouts = queued_timeouts_.load(std::memory_order_relaxed);
  stats.no_backend_errors =
      no_backend_errors_.load(std::memory_order_relaxed);
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.backends_failed = backends_failed_.load(std::memory_order_relaxed);
  stats.backends_revived =
      backends_revived_.load(std::memory_order_relaxed);
  util::MutexLock lock(mu_);
  stats.backends_total = static_cast<int>(backends_.size());
  for (const auto& [name, backend] : backends_) {
    (void)name;
    if (backend->healthy.load(std::memory_order_relaxed) &&
        !backend->drained.load(std::memory_order_relaxed))
      ++stats.backends_healthy;
  }
  return stats;
}

std::string Router::format_stats() const {
  const RouterStats stats = this->stats();
  std::ostringstream out;
  out << "role=router backends=" << stats.backends_total
      << " healthy=" << stats.backends_healthy
      << " replicas=" << options_.replicas
      << " forwarded=" << stats.forwarded
      << " reroutes=" << stats.reroutes
      << " replica_hits=" << stats.replica_hits
      << " mirrored=" << stats.mirrored
      << " mirror_dropped=" << stats.mirror_dropped
      << " queued=" << stats.queued
      << " queued_timeouts=" << stats.queued_timeouts
      << " no_backend_errors=" << stats.no_backend_errors
      << " probes=" << stats.probes
      << " backends_failed=" << stats.backends_failed
      << " backends_revived=" << stats.backends_revived;
  return out.str();
}

std::string Router::format_health() const {
  const RouterStats stats = this->stats();
  const char* status = "ready";
  if (stats.backends_healthy == 0)
    status = "down";
  else if (stats.backends_healthy < stats.backends_total)
    status = "degraded";
  std::ostringstream out;
  out << "status=" << status << " backends=" << stats.backends_total
      << " healthy=" << stats.backends_healthy
      << " reroutes=" << stats.reroutes
      << " replica_hits=" << stats.replica_hits
      << " mirror_dropped=" << stats.mirror_dropped
      << " queued=" << stats.queued
      << " queued_timeouts=" << stats.queued_timeouts;
  return out.str();
}

void Router::probe_once() {
  // Snapshot the membership, then probe without holding the lock: a probe
  // blocks on connect timeouts and must not stall forwarding.
  std::vector<Backend*> targets;
  {
    util::MutexLock lock(mu_);
    targets.reserve(backends_.size());
    for (auto& [name, backend] : backends_) {
      (void)name;
      targets.push_back(backend.get());
    }
  }
  for (Backend* backend : targets) {
    probes_.fetch_add(1, std::memory_order_relaxed);
    // Probe on a fresh connection with a short connect budget: pooled
    // sockets would hide a dead backend until first use, and the default
    // budget (2 s) is too patient for a 200 ms cadence.
    serve::ClientOptions probe_options = options_.client;
    probe_options.connect_attempts = 1;
    serve::Client probe(backend->socket_path, probe_options);
    bool alive = false;
    if (probe.connect()) {
      try {
        alive = util::starts_with(probe.request("health"), "ok");
      } catch (const std::exception&) {
        alive = false;
      }
    }
    if (alive) {
      revive(backend->name);
    } else {
      mark_unhealthy(backend->name);
    }
  }
}

void Router::start_probes() {
  if (options_.probe_interval_ms <= 0) return;
  if (probing_.exchange(true, std::memory_order_relaxed)) return;
  prober_ = std::thread([this] {
    while (probing_.load(std::memory_order_relaxed)) {
      probe_once();
      // Sleep in small slices so stop_probes() is honoured promptly even
      // with a long probe interval.
      int remaining = options_.probe_interval_ms;
      while (remaining > 0 && probing_.load(std::memory_order_relaxed)) {
        const int slice = remaining < 20 ? remaining : 20;
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        remaining -= slice;
      }
    }
  });
}

void Router::stop_probes() {
  probing_.store(false, std::memory_order_relaxed);
  if (prober_.joinable()) prober_.join();
}

void Router::run_unix_socket(const std::string& path) {
  start_probes();
  socket_server_.run(path);
  stop_probes();
}

void Router::stop() { socket_server_.stop(); }

}  // namespace rebert::router
