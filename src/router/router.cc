#include "router/router.h"

#include <chrono>
#include <exception>
#include <sstream>
#include <utility>

#include "serve/protocol.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace rebert::router {

namespace {

/// One line, no trailing newline — same discipline as ServeLoop.
std::string single_line(std::string text) {
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      socket_server_(serve::SocketServer::Callbacks{
          /*handle_line=*/[this](const std::string& line, bool* quit) {
            return handle_line(line, quit);
          },
          /*is_blank=*/[](const std::string& line) {
            return util::trim(line).empty() || util::trim(line)[0] == '#';
          },
          /*overload_line=*/[this] {
            return serve::format_overloaded(options_.retry_after_ms);
          },
          /*on_answered=*/nullptr,
          /*on_shutdown=*/nullptr,
          /*handle_frame=*/[this](const wire::Frame& frame, bool* close) {
            return handle_frame(frame, close);
          },
          /*overload_frame=*/[this] {
            return wire::encode_response(
                wire::overloaded_response(options_.retry_after_ms));
          }}),
      ring_(options_.vnodes) {
  if (options_.dispatch_threads > 0)
    socket_server_.set_dispatch_threads(options_.dispatch_threads);
}

Router::~Router() { stop_probes(); }

void Router::add_backend(const std::string& name,
                         const std::string& socket_path) {
  util::MutexLock lock(mu_);
  REBERT_CHECK_MSG(backends_.find(name) == backends_.end(),
                   "duplicate backend '" + name + "'");
  auto backend = std::make_unique<Backend>();
  backend->name = name;
  backend->socket_path = socket_path;
  backend->pool = std::make_unique<serve::ClientPool>(
      socket_path, options_.client, options_.pool_max_idle);
  // A second pool of binary-negotiated connections for frame relay; built
  // lazily on first use like any pooled connection, so a text-only backend
  // deployment never pays for it.
  serve::ClientOptions wire_options = options_.client;
  wire_options.binary = true;
  backend->wire_pool = std::make_unique<serve::ClientPool>(
      socket_path, wire_options, options_.pool_max_idle);
  backends_.emplace(name, std::move(backend));
  ring_.add(name);
  LOG_INFO << "router: backend " << name << " at " << socket_path
           << " joined the ring";
}

bool Router::drain(const std::string& name) {
  util::MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return false;
  it->second->drained.store(true, std::memory_order_relaxed);
  ring_.remove(name);
  LOG_INFO << "router: backend " << name << " drained";
  return true;
}

bool Router::undrain(const std::string& name) {
  util::MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return false;
  it->second->drained.store(false, std::memory_order_relaxed);
  if (it->second->healthy.load(std::memory_order_relaxed))
    ring_.add(name);
  LOG_INFO << "router: backend " << name << " undrained";
  return true;
}

std::string Router::backend_for(const std::string& bench) const {
  util::MutexLock lock(mu_);
  return ring_.node_for(bench);
}

void Router::set_backend_info(
    std::function<std::string(const std::string&)> info) {
  util::MutexLock lock(mu_);
  backend_info_ = std::move(info);
}

void Router::mark_unhealthy(const std::string& name) {
  util::MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return;
  if (!it->second->healthy.exchange(false, std::memory_order_relaxed))
    return;  // already out
  ring_.remove(name);
  // Pooled connections to a dead backend are all stale; drop them so a
  // revival starts from fresh sockets.
  it->second->pool->clear_idle();
  it->second->wire_pool->clear_idle();
  backends_failed_.fetch_add(1, std::memory_order_relaxed);
  LOG_WARN << "router: backend " << name
           << " marked unhealthy; ring rebalanced";
}

void Router::revive(const std::string& name) {
  util::MutexLock lock(mu_);
  const auto it = backends_.find(name);
  if (it == backends_.end()) return;
  if (it->second->healthy.exchange(true, std::memory_order_relaxed))
    return;  // was already healthy
  if (!it->second->drained.load(std::memory_order_relaxed))
    ring_.add(name);
  backends_revived_.fetch_add(1, std::memory_order_relaxed);
  LOG_INFO << "router: backend " << name << " revived; key range restored";
}

bool Router::try_backend(Backend& backend, const std::string& line,
                         std::string* reply) {
  serve::ClientPool::Lease lease = backend.pool->acquire();
  if (lease) {
    try {
      *reply = lease->request(line);
      return true;
    } catch (const std::exception&) {
      // A pooled connection can be stale (backend restarted since it was
      // idle); one fresh socket distinguishes "stale connection" from
      // "dead backend" before the ring gets rebalanced.
      lease.discard();
    }
  }
  serve::ClientPool::Lease fresh = backend.pool->acquire_fresh();
  if (!fresh) return false;
  try {
    *reply = fresh->request(line);
    return true;
  } catch (const std::exception&) {
    fresh.discard();
    return false;
  }
}

bool Router::try_backend_frame(Backend& backend, const std::string& raw,
                               std::string* reply_frame) {
  serve::ClientPool::Lease lease = backend.wire_pool->acquire();
  if (lease) {
    try {
      *reply_frame = lease->request_frame(raw).raw;
      return true;
    } catch (const std::exception&) {
      // Same stale-vs-dead discipline as the text path: one fresh socket
      // (with a fresh hello handshake) decides before the ring rebalances.
      lease.discard();
    }
  }
  serve::ClientPool::Lease fresh = backend.wire_pool->acquire_fresh();
  if (!fresh) return false;
  try {
    *reply_frame = fresh->request_frame(raw).raw;
    return true;
  } catch (const std::exception&) {
    fresh.discard();
    return false;
  }
}

std::string Router::forward(const std::string& line,
                            const std::string& bench) {
  for (int attempt = 0; attempt < options_.forward_attempts; ++attempt) {
    Backend* backend = nullptr;
    {
      util::MutexLock lock(mu_);
      const std::string owner = ring_.node_for(bench);
      if (!owner.empty()) backend = backends_.at(owner).get();
    }
    if (backend == nullptr) break;  // ring empty: nothing left to try
    std::string reply;
    if (try_backend(*backend, line, &reply)) {
      forwarded_.fetch_add(1, std::memory_order_relaxed);
      return reply;  // pass-through, overload/degraded tags included
    }
    mark_unhealthy(backend->name);
    reroutes_.fetch_add(1, std::memory_order_relaxed);
  }
  no_backend_errors_.fetch_add(1, std::memory_order_relaxed);
  return serve::format_error("no_backend retry_after_ms=" +
                             std::to_string(options_.retry_after_ms));
}

std::string Router::forward_frame(const std::string& raw,
                                  const std::string& bench,
                                  wire::Verb verb) {
  for (int attempt = 0; attempt < options_.forward_attempts; ++attempt) {
    Backend* backend = nullptr;
    {
      util::MutexLock lock(mu_);
      const std::string owner = ring_.node_for(bench);
      if (!owner.empty()) backend = backends_.at(owner).get();
    }
    if (backend == nullptr) break;  // ring empty: nothing left to try
    std::string reply_frame;
    if (try_backend_frame(*backend, raw, &reply_frame)) {
      forwarded_.fetch_add(1, std::memory_order_relaxed);
      return reply_frame;  // verbatim: overload / degraded flags included
    }
    mark_unhealthy(backend->name);
    reroutes_.fetch_add(1, std::memory_order_relaxed);
  }
  no_backend_errors_.fetch_add(1, std::memory_order_relaxed);
  wire::Response refusal =
      wire::no_backend_response(options_.retry_after_ms);
  refusal.verb = verb;
  return wire::encode_response(refusal);
}

std::string Router::handle_frame(const wire::Frame& frame, bool* close) {
  wire::Request request;
  std::string error;
  if (!wire::decode_request_payload(frame.payload, &request, &error)) {
    // Answer this request with an error frame; the connection survives
    // (the frame itself checksummed clean, only the message was bad).
    return wire::encode_response(
        wire::error_response(wire::Verb::kHelp, std::move(error)));
  }
  try {
    switch (request.verb) {
      case wire::Verb::kScore:
      case wire::Verb::kRecover:
        // Relay the exact bytes we received — never re-encode.
        return forward_frame(frame.raw, request.bench, request.verb);
      case wire::Verb::kStats:
        return wire::encode_response(
            wire::ok_response(request.verb, format_stats()));
      case wire::Verb::kHealth:
        return wire::encode_response(
            wire::ok_response(request.verb, format_health()));
      case wire::Verb::kHelp:
        return wire::encode_response(wire::ok_response(
            request.verb,
            serve::help_text() +
                "; router: backends | drain <name> | undrain <name>"));
      case wire::Verb::kQuit:
        if (close) *close = true;
        return wire::encode_response(
            wire::ok_response(request.verb, "bye"));
    }
    return wire::encode_response(
        wire::error_response(request.verb, "unreachable"));
  } catch (const std::exception& e) {
    return wire::encode_response(
        wire::error_response(request.verb, single_line(e.what())));
  }
}

std::string Router::handle_line(const std::string& line, bool* quit) {
  try {
    // Admin verbs first — they are router vocabulary, not protocol.h's.
    const std::vector<std::string> tokens =
        util::split_ws(util::trim(line));
    if (!tokens.empty()) {
      if (tokens[0] == "backends" && tokens.size() == 1)
        return serve::format_ok(format_backends());
      if (tokens[0] == "drain" && tokens.size() == 2)
        return drain(tokens[1])
                   ? serve::format_ok("drained " + tokens[1])
                   : serve::format_error("unknown backend '" + tokens[1] +
                                         "'");
      if (tokens[0] == "undrain" && tokens.size() == 2)
        return undrain(tokens[1])
                   ? serve::format_ok("undrained " + tokens[1])
                   : serve::format_error("unknown backend '" + tokens[1] +
                                         "'");
    }
    const serve::Request request = serve::parse_request(line);
    switch (request.type) {
      case serve::RequestType::kScore:
      case serve::RequestType::kRecover:
        // Forward the raw line: the backend re-parses it, so model= and
        // deadline_ms= fields survive verbatim.
        return forward(line, request.bench);
      case serve::RequestType::kStats:
        return serve::format_ok(format_stats());
      case serve::RequestType::kHealth:
        return serve::format_ok(format_health());
      case serve::RequestType::kHelp:
        return serve::format_ok(
            serve::help_text() +
            "; router: backends | drain <name> | undrain <name>");
      case serve::RequestType::kQuit:
        if (quit) *quit = true;
        return serve::format_ok("bye");
      case serve::RequestType::kInvalid:
        return serve::format_error(request.error);
    }
    return serve::format_error("unreachable");
  } catch (const std::exception& e) {
    return serve::format_error(single_line(e.what()));
  }
}

std::string Router::format_backends() const {
  util::MutexLock lock(mu_);
  std::ostringstream out;
  out << "backends=" << backends_.size();
  for (const auto& [name, backend] : backends_) {
    out << " | name=" << name << " path=" << backend->socket_path
        << " healthy=" << (backend->healthy.load(std::memory_order_relaxed)
                               ? 1 : 0)
        << " drained=" << (backend->drained.load(std::memory_order_relaxed)
                               ? 1 : 0);
    if (backend_info_) {
      const std::string extra = backend_info_(name);
      if (!extra.empty()) out << " " << extra;
    }
  }
  return out.str();
}

RouterStats Router::stats() const {
  RouterStats stats;
  stats.forwarded = forwarded_.load(std::memory_order_relaxed);
  stats.reroutes = reroutes_.load(std::memory_order_relaxed);
  stats.no_backend_errors =
      no_backend_errors_.load(std::memory_order_relaxed);
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.backends_failed = backends_failed_.load(std::memory_order_relaxed);
  stats.backends_revived =
      backends_revived_.load(std::memory_order_relaxed);
  util::MutexLock lock(mu_);
  stats.backends_total = static_cast<int>(backends_.size());
  for (const auto& [name, backend] : backends_) {
    (void)name;
    if (backend->healthy.load(std::memory_order_relaxed) &&
        !backend->drained.load(std::memory_order_relaxed))
      ++stats.backends_healthy;
  }
  return stats;
}

std::string Router::format_stats() const {
  const RouterStats stats = this->stats();
  std::ostringstream out;
  out << "role=router backends=" << stats.backends_total
      << " healthy=" << stats.backends_healthy
      << " forwarded=" << stats.forwarded
      << " reroutes=" << stats.reroutes
      << " no_backend_errors=" << stats.no_backend_errors
      << " probes=" << stats.probes
      << " backends_failed=" << stats.backends_failed
      << " backends_revived=" << stats.backends_revived;
  return out.str();
}

std::string Router::format_health() const {
  const RouterStats stats = this->stats();
  const char* status = "ready";
  if (stats.backends_healthy == 0)
    status = "down";
  else if (stats.backends_healthy < stats.backends_total)
    status = "degraded";
  std::ostringstream out;
  out << "status=" << status << " backends=" << stats.backends_total
      << " healthy=" << stats.backends_healthy
      << " reroutes=" << stats.reroutes;
  return out.str();
}

void Router::probe_once() {
  // Snapshot the membership, then probe without holding the lock: a probe
  // blocks on connect timeouts and must not stall forwarding.
  std::vector<Backend*> targets;
  {
    util::MutexLock lock(mu_);
    targets.reserve(backends_.size());
    for (auto& [name, backend] : backends_) {
      (void)name;
      targets.push_back(backend.get());
    }
  }
  for (Backend* backend : targets) {
    probes_.fetch_add(1, std::memory_order_relaxed);
    // Probe on a fresh connection with a short connect budget: pooled
    // sockets would hide a dead backend until first use, and the default
    // budget (2 s) is too patient for a 200 ms cadence.
    serve::ClientOptions probe_options = options_.client;
    probe_options.connect_attempts = 1;
    serve::Client probe(backend->socket_path, probe_options);
    bool alive = false;
    if (probe.connect()) {
      try {
        alive = util::starts_with(probe.request("health"), "ok");
      } catch (const std::exception&) {
        alive = false;
      }
    }
    if (alive) {
      revive(backend->name);
    } else {
      mark_unhealthy(backend->name);
    }
  }
}

void Router::start_probes() {
  if (options_.probe_interval_ms <= 0) return;
  if (probing_.exchange(true, std::memory_order_relaxed)) return;
  prober_ = std::thread([this] {
    while (probing_.load(std::memory_order_relaxed)) {
      probe_once();
      // Sleep in small slices so stop_probes() is honoured promptly even
      // with a long probe interval.
      int remaining = options_.probe_interval_ms;
      while (remaining > 0 && probing_.load(std::memory_order_relaxed)) {
        const int slice = remaining < 20 ? remaining : 20;
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        remaining -= slice;
      }
    }
  });
}

void Router::stop_probes() {
  probing_.store(false, std::memory_order_relaxed);
  if (prober_.joinable()) prober_.join();
}

void Router::run_unix_socket(const std::string& path) {
  start_probes();
  socket_server_.run(path);
  stop_probes();
}

void Router::stop() { socket_server_.stop(); }

}  // namespace rebert::router
