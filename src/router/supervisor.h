// BackendSupervisor — spawn, reap, and restart backend worker processes.
//
// The router's workers are ordinary `rebert_cli serve` daemons; the
// supervisor forks/execs one process per registered backend and keeps it
// running: poll_once() reaps exits with waitpid(WNOHANG) and respawns dead
// workers after a capped exponential backoff (1 << consecutive_failures
// restart delays, so a crash-looping worker cannot busy-spin fork()).
// A worker that stays up long enough resets its failure streak — a crash
// after a week is not the same as the fifth crash this second.
//
// The supervisor only manages processes; it does not know about the ring.
// The Router's health prober notices the kill (probe fails -> key range
// rebalanced) and the revival (probe answers -> range restored) on its
// own, so supervisor and router compose without a shared clock: kill -9 a
// worker and its benches reroute, the supervisor respawns it, the prober
// puts it back.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <sys/types.h>
#include <vector>

#include "util/mutex.h"

namespace rebert::router {

struct SupervisorOptions {
  /// Base restart delay; the k-th consecutive failure waits
  /// min(base << (k-1), max) milliseconds before the respawn.
  int restart_backoff_ms = 100;
  int max_backoff_ms = 5000;
  /// Uptime after which a worker's consecutive-failure streak resets.
  int healthy_uptime_ms = 3000;
  /// Deterministic seeded jitter stretching each respawn delay by up to
  /// this percentage (util/backoff.h, seeded by worker name + failure
  /// count). Several workers dying together — a kill drill, an OOM sweep
  /// — then respawn staggered instead of slamming fork/exec and the
  /// router's prober in one wave. Jitter only adds delay, so "not before
  /// the backoff" stays true; 0 disables it.
  int restart_jitter_pct = 15;
};

class BackendSupervisor {
 public:
  explicit BackendSupervisor(SupervisorOptions options = {});
  ~BackendSupervisor();

  BackendSupervisor(const BackendSupervisor&) = delete;
  BackendSupervisor& operator=(const BackendSupervisor&) = delete;

  /// Register a worker: `argv` is the full command line (argv[0] = the
  /// binary, usually /proc/self/exe). Not spawned until start().
  void add(const std::string& name, std::vector<std::string> argv)
      EXCLUDES(mu_);

  /// Spawn every registered worker that is not already running.
  void start() EXCLUDES(mu_);

  /// SIGTERM (then SIGKILL after a grace period) every running worker and
  /// reap them. Idempotent; also runs on destruction.
  void stop() EXCLUDES(mu_);

  /// One supervision tick: reap exited workers (waitpid WNOHANG) and
  /// respawn those whose backoff has elapsed. Call from any loop cadence —
  /// delays are wall-clock based, not tick-counted. Returns the number of
  /// exits reaped. Public so tests drive supervision without a thread.
  int poll_once() EXCLUDES(mu_);

  /// The worker's current pid, or -1 when it is not running.
  pid_t pid_of(const std::string& name) const EXCLUDES(mu_);

  /// Times the worker has been respawned after an exit.
  std::uint64_t restarts_of(const std::string& name) const EXCLUDES(mu_);

  std::size_t size() const EXCLUDES(mu_);

 private:
  struct Worker {
    std::string name;
    std::vector<std::string> argv;
    pid_t pid = -1;
    std::uint64_t restarts = 0;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point spawned_at{};
    std::chrono::steady_clock::time_point respawn_after{};
    bool want_running = false;
  };

  void spawn(Worker* worker) REQUIRES(mu_);

  SupervisorOptions options_;
  mutable util::Mutex mu_{"supervisor.workers"};
  std::map<std::string, Worker> workers_ GUARDED_BY(mu_);
};

}  // namespace rebert::router
