#include "router/hash_ring.h"

#include <algorithm>

#include "util/check.h"

namespace rebert::router {

HashRing::HashRing(int vnodes) : vnodes_(vnodes) {
  REBERT_CHECK_MSG(vnodes >= 1, "hash ring needs at least 1 vnode");
}

std::uint64_t HashRing::hash(const std::string& text) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a over the bytes...
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  // ...then a full-avalanche finalizer (murmur3 fmix64). Raw FNV-1a barely
  // mixes the trailing bytes of short keys — bench names like "b03".."b13"
  // land within ~2e-6 of each other on the ring and a 2-backend ring then
  // puts EVERY bench on one backend. The finalizer decorrelates them.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

void HashRing::add(const std::string& node) {
  REBERT_CHECK_MSG(!node.empty(), "hash ring member name must be non-empty");
  if (members_.count(node) > 0) return;
  int inserted = 0;
  for (int k = 0; k < vnodes_; ++k) {
    const std::uint64_t point = hash(node + "#" + std::to_string(k));
    // A 64-bit collision between distinct (node, k) pairs is vanishingly
    // rare; first-comer keeps the point so placement stays order-free for
    // all practical member sets.
    if (ring_.emplace(point, node).second) ++inserted;
  }
  members_[node] = inserted;
}

void HashRing::remove(const std::string& node) {
  const auto member = members_.find(node);
  if (member == members_.end()) return;
  for (int k = 0; k < vnodes_; ++k) {
    const auto it = ring_.find(hash(node + "#" + std::to_string(k)));
    if (it != ring_.end() && it->second == node) ring_.erase(it);
  }
  members_.erase(member);
}

bool HashRing::contains(const std::string& node) const {
  return members_.count(node) > 0;
}

std::string HashRing::node_for(const std::string& key) const {
  if (ring_.empty()) return "";
  auto it = ring_.lower_bound(hash(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

std::vector<std::string> HashRing::nodes() const {
  std::vector<std::string> names;
  names.reserve(members_.size());
  for (const auto& [name, points] : members_) names.push_back(name);
  return names;
}

}  // namespace rebert::router
