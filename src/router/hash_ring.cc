#include "router/hash_ring.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rebert::router {

HashRing::HashRing(int vnodes) : vnodes_(vnodes) {
  REBERT_CHECK_MSG(vnodes >= 1, "hash ring needs at least 1 vnode");
}

std::uint64_t HashRing::hash(const std::string& text) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a over the bytes...
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  // ...then a full-avalanche finalizer (murmur3 fmix64). Raw FNV-1a barely
  // mixes the trailing bytes of short keys — bench names like "b03".."b13"
  // land within ~2e-6 of each other on the ring and a 2-backend ring then
  // puts EVERY bench on one backend. The finalizer decorrelates them.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

void HashRing::add(const std::string& node, double weight) {
  REBERT_CHECK_MSG(!node.empty(), "hash ring member name must be non-empty");
  REBERT_CHECK_MSG(weight > 0.0 && std::isfinite(weight),
                   "hash ring weight must be finite and positive");
  if (members_.count(node) > 0) return;
  // Weight scales the virtual point count; the floor of 1 keeps even a
  // tiny-weight member addressable (a zero-point member would silently own
  // nothing while claiming membership).
  const int points = std::max(
      1, static_cast<int>(std::lround(weight * vnodes_)));
  for (int k = 0; k < points; ++k) {
    const std::uint64_t point = hash(node + "#" + std::to_string(k));
    // A 64-bit collision between distinct (node, k) pairs is vanishingly
    // rare; first-comer keeps the point so placement stays order-free for
    // all practical member sets.
    ring_.emplace(point, node);
  }
  // Remember the REQUESTED point count (not the deduped insert count):
  // remove() re-derives the same hash sequence from it.
  members_[node] = points;
}

void HashRing::remove(const std::string& node) {
  const auto member = members_.find(node);
  if (member == members_.end()) return;
  for (int k = 0; k < member->second; ++k) {
    const auto it = ring_.find(hash(node + "#" + std::to_string(k)));
    if (it != ring_.end() && it->second == node) ring_.erase(it);
  }
  members_.erase(member);
}

bool HashRing::contains(const std::string& node) const {
  return members_.count(node) > 0;
}

std::string HashRing::node_for(const std::string& key) const {
  if (ring_.empty()) return "";
  auto it = ring_.lower_bound(hash(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

std::vector<std::string> HashRing::owners(const std::string& key,
                                          int r) const {
  std::vector<std::string> found;
  if (ring_.empty() || r <= 0) return found;
  const std::size_t want =
      std::min(static_cast<std::size_t>(r), members_.size());
  found.reserve(want);
  // Walk clockwise from the key's point collecting distinct backends. The
  // walk visits each virtual point at most once (bounded by ring size);
  // `want <= members_` guarantees termination with exactly `want` names.
  auto it = ring_.lower_bound(hash(key));
  for (std::size_t visited = 0;
       found.size() < want && visited < ring_.size(); ++visited, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(found.begin(), found.end(), it->second) == found.end())
      found.push_back(it->second);
  }
  return found;
}

std::vector<std::string> HashRing::nodes() const {
  std::vector<std::string> names;
  names.reserve(members_.size());
  for (const auto& [name, points] : members_) names.push_back(name);
  return names;
}

int HashRing::points_of(const std::string& node) const {
  const auto it = members_.find(node);
  return it == members_.end() ? 0 : it->second;
}

}  // namespace rebert::router
