// Consistent-hash ring — the placement function of the router tier.
//
// Each backend is inserted as `vnodes` virtual points on a 64-bit ring
// (FNV-1a of "name#k" folded through an avalanche finalizer); a key (a
// bench name) maps to the first virtual point clockwise from its own hash. Properties the router and its tests
// rely on:
//
//   * Deterministic: placement is a pure function of the member set — no
//     randomness, no dependence on insertion order or wall clock — so two
//     router processes with the same backends route identically, and a
//     restart changes nothing.
//   * Minimal movement: removing a backend remaps only the keys that were
//     on it; adding one to an N-member ring moves roughly 1/(N+1) of the
//     keys (bounded well under 2/N), never shuffling keys between two
//     surviving backends.
//
// Replicated placement: owners(key, r) extends the single-owner lookup to
// the first R DISTINCT backends clockwise from the key's point. The walk
// order is a pure function of the member set, so owners(key, r)[0] ==
// node_for(key) always, and the (primary, secondary) pair of a key only
// changes when one of the two leaves or a joiner lands between them —
// the same minimal-movement property, per replica slot.
//
// Heterogeneous backends: add(node, weight) scales the member's virtual
// point count, so a weight-2 machine owns about twice the key share of a
// weight-1 machine. Weights only shape shares; every property above is
// unchanged.
//
// Not thread-safe by design: the Router serializes mutation and lookup
// behind its own mutex, and tests drive it single-threaded.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rebert::router {

class HashRing {
 public:
  /// `vnodes` virtual points per unit of member weight. More points
  /// smooth the key distribution at the cost of a bigger ring map; 64
  /// keeps the largest backend's share within ~2x of the smallest on
  /// realistic member counts.
  explicit HashRing(int vnodes = 64);

  /// Insert a backend with `weight` x vnodes virtual points (minimum 1).
  /// Adding a member twice is a no-op — including with a different
  /// weight; remove first to re-weigh.
  void add(const std::string& node, double weight = 1.0);

  /// Remove a backend (no-op when absent). Keys it owned redistribute to
  /// the survivors; nobody else's keys move.
  void remove(const std::string& node);

  bool contains(const std::string& node) const;

  /// The backend owning `key`, or "" when the ring is empty.
  std::string node_for(const std::string& key) const;

  /// The first `r` DISTINCT backends clockwise from `key`'s point —
  /// replica placement in failover order. owners(key, r)[0] ==
  /// node_for(key); fewer than `r` members degrades gracefully to all of
  /// them (an empty ring returns an empty vector). r <= 0 returns empty.
  std::vector<std::string> owners(const std::string& key, int r) const;

  /// Current members, sorted by name.
  std::vector<std::string> nodes() const;

  /// Virtual points a member was inserted with (0 when absent) — how
  /// weighted shares are audited.
  int points_of(const std::string& node) const;

  std::size_t num_nodes() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// FNV-1a 64-bit + murmur3 finalizer — the ring's one hash, exposed for
  /// tests.
  static std::uint64_t hash(const std::string& text);

 private:
  int vnodes_;
  std::map<std::uint64_t, std::string> ring_;  // point -> backend name
  std::map<std::string, int> members_;         // name -> points requested
};

}  // namespace rebert::router
