// Consistent-hash ring — the placement function of the router tier.
//
// Each backend is inserted as `vnodes` virtual points on a 64-bit ring
// (FNV-1a of "name#k" folded through an avalanche finalizer); a key (a
// bench name) maps to the first virtual point clockwise from its own hash. Properties the router and its tests
// rely on:
//
//   * Deterministic: placement is a pure function of the member set — no
//     randomness, no dependence on insertion order or wall clock — so two
//     router processes with the same backends route identically, and a
//     restart changes nothing.
//   * Minimal movement: removing a backend remaps only the keys that were
//     on it; adding one to an N-member ring moves roughly 1/(N+1) of the
//     keys (bounded well under 2/N), never shuffling keys between two
//     surviving backends.
//
// Not thread-safe by design: the Router serializes mutation and lookup
// behind its own mutex, and tests drive it single-threaded.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rebert::router {

class HashRing {
 public:
  /// `vnodes` virtual points per backend. More points smooth the key
  /// distribution at the cost of a bigger ring map; 64 keeps the largest
  /// backend's share within ~2x of the smallest on realistic member
  /// counts.
  explicit HashRing(int vnodes = 64);

  /// Insert a backend. Adding a member twice is a no-op.
  void add(const std::string& node);

  /// Remove a backend (no-op when absent). Keys it owned redistribute to
  /// the survivors; nobody else's keys move.
  void remove(const std::string& node);

  bool contains(const std::string& node) const;

  /// The backend owning `key`, or "" when the ring is empty.
  std::string node_for(const std::string& key) const;

  /// Current members, sorted by name.
  std::vector<std::string> nodes() const;

  std::size_t num_nodes() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// FNV-1a 64-bit + murmur3 finalizer — the ring's one hash, exposed for
  /// tests.
  static std::uint64_t hash(const std::string& text);

 private:
  int vnodes_;
  std::map<std::uint64_t, std::string> ring_;  // point -> backend name
  std::map<std::string, int> members_;         // name -> points inserted
};

}  // namespace rebert::router
