// Structural-matching baseline — reimplementation of Meade et al.,
// "Gate-level netlist reverse engineering for hardware security: Control
// logic register identification" (ISCAS 2016), the comparison method of the
// paper's Table II/III ("Structural").
//
// The method groups registers whose bounded fan-in cones are structurally
// similar and share driving signals:
//   * shape similarity — simultaneous recursive traversal of the two
//     fan-in trees counting positionally matching gate types,
//   * support similarity — Jaccard over the cones' leaf signal sets (shared
//     control/data sources; unlike ReBERT the baseline may use real signal
//     names, which is exactly the template matching that corruption
//     destroys).
// Pairs whose combined similarity exceeds a fixed threshold are connected;
// connected components are the reported words. No learning is involved.
#pragma once

#include <vector>

#include "nl/cone.h"
#include "nl/netlist.h"

namespace rebert::structural {

struct MatchingOptions {
  int backtrace_depth = 6;       // same cone depth as ReBERT for fairness
  double shape_weight = 0.7;     // weight of tree-shape similarity
  double support_weight = 0.3;   // weight of shared-leaf similarity
  // Combined similarity needed for an edge. A perfect shape match alone
  // scores shape_weight = 0.7; the default demands slightly more, so a
  // template copy must also share part of its support (the common
  // enable/control signals of a real word). Empirically this separates
  // same-word template copies from cross-word template twins best on the
  // benchmark suite.
  double group_threshold = 0.75;
  // Worker threads for the O(bits²) pairwise-similarity sweep: 1 = serial,
  // 0 = REBERT_THREADS / hardware. Labels are identical at any value: the
  // similarities are computed in parallel, but union-find merges replay in
  // the serial pair order.
  int num_threads = 1;
};

/// Positional tree-shape similarity in [0, 1]: fraction of nodes that match
/// by gate type under simultaneous pre-order traversal, normalized by the
/// larger tree.
double shape_similarity(const nl::ConeTree& a, const nl::ConeTree& b);

/// Jaccard similarity of the two cones' leaf-name sets in [0, 1].
double support_similarity(const nl::ConeTree& a, const nl::ConeTree& b);

/// Combined pairwise similarity per MatchingOptions weights.
double pair_similarity(const nl::ConeTree& a, const nl::ConeTree& b,
                       const MatchingOptions& options);

struct StructuralResult {
  std::vector<int> labels;  // word label per bit (extract_bits order)
  int num_words = 0;
  double total_seconds = 0.0;
};

/// Run the full baseline on a netlist.
StructuralResult recover_words_structural(const nl::Netlist& netlist,
                                          const MatchingOptions& options = {});

}  // namespace rebert::structural
