#include "structural/matching.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "nl/words.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "runtime/threads.h"
#include "util/check.h"
#include "util/timer.h"

namespace rebert::structural {

namespace {

bool is_commutative(nl::GateType type) {
  switch (type) {
    case nl::GateType::kAnd:
    case nl::GateType::kOr:
    case nl::GateType::kNand:
    case nl::GateType::kNor:
    case nl::GateType::kXor:
    case nl::GateType::kXnor:
      return true;
    default:
      return false;
  }
}

// Nodes matched by simultaneous traversal: same gate type at the same tree
// position counts 1 and recurses into aligned children. Commutative
// 2-input gates try both child alignments and keep the better one — the
// template matcher of [12] is insensitive to synthesis-chosen input order.
int matching_nodes(const nl::ConeTree& a, int ia, const nl::ConeTree& b,
                   int ib) {
  const nl::ConeNode& na = a.nodes[static_cast<std::size_t>(ia)];
  const nl::ConeNode& nb = b.nodes[static_cast<std::size_t>(ib)];
  // Leaves match any leaf (signal names are not part of the *shape*).
  if (na.is_leaf || nb.is_leaf) return (na.is_leaf && nb.is_leaf) ? 1 : 0;
  if (na.type != nb.type) return 0;
  const std::size_t ca = na.children.size(), cb = nb.children.size();
  if (is_commutative(na.type) && ca == 2 && cb == 2) {
    const int straight = matching_nodes(a, na.children[0], b, nb.children[0]) +
                         matching_nodes(a, na.children[1], b, nb.children[1]);
    const int crossed = matching_nodes(a, na.children[0], b, nb.children[1]) +
                        matching_nodes(a, na.children[1], b, nb.children[0]);
    return 1 + std::max(straight, crossed);
  }
  int total = 1;
  const std::size_t shared = std::min(ca, cb);
  for (std::size_t c = 0; c < shared; ++c)
    total += matching_nodes(a, na.children[c], b, nb.children[c]);
  return total;
}

}  // namespace

double shape_similarity(const nl::ConeTree& a, const nl::ConeTree& b) {
  REBERT_CHECK(!a.nodes.empty() && !b.nodes.empty());
  const int matched = matching_nodes(a, 0, b, 0);
  // Dice-style normalization by the average size: tolerant of the depth
  // growth along ripple/carry chains while still penalizing size mismatch.
  return 2.0 * static_cast<double>(matched) /
         static_cast<double>(a.size() + b.size());
}

double support_similarity(const nl::ConeTree& a, const nl::ConeTree& b) {
  std::unordered_set<std::string> leaves_a, leaves_b;
  for (const nl::ConeNode& node : a.nodes)
    if (node.is_leaf) leaves_a.insert(node.name);
  for (const nl::ConeNode& node : b.nodes)
    if (node.is_leaf) leaves_b.insert(node.name);
  if (leaves_a.empty() && leaves_b.empty()) return 1.0;
  int intersection = 0;
  for (const std::string& leaf : leaves_a)
    if (leaves_b.count(leaf)) ++intersection;
  const int uni = static_cast<int>(leaves_a.size() + leaves_b.size()) -
                  intersection;
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

double pair_similarity(const nl::ConeTree& a, const nl::ConeTree& b,
                       const MatchingOptions& options) {
  const double total_weight = options.shape_weight + options.support_weight;
  REBERT_CHECK_MSG(total_weight > 0.0, "similarity weights are all zero");
  return (options.shape_weight * shape_similarity(a, b) +
          options.support_weight * support_similarity(a, b)) /
         total_weight;
}

StructuralResult recover_words_structural(const nl::Netlist& netlist,
                                          const MatchingOptions& options) {
  util::WallTimer timer;
  StructuralResult result;

  const std::vector<nl::Bit> bits = nl::extract_bits(netlist);
  REBERT_CHECK_MSG(!bits.empty(), "netlist has no sequential elements");
  const int n = static_cast<int>(bits.size());

  std::vector<nl::ConeTree> cones;
  cones.reserve(bits.size());
  for (const nl::Bit& bit : bits)
    cones.push_back(
        nl::extract_cone(netlist, bit.d_net, options.backtrace_depth));

  // Union-find grouping over similar pairs (inline to avoid depending on
  // the rebert core library).
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  // Phase 1 (parallel): the expensive pairwise tree comparisons, each pair
  // writing only its own slot of `above`. Phase 2 (serial): replay the
  // threshold edges in lexicographic pair order through union-find, so the
  // resulting labels are identical to the single-threaded sweep at any
  // thread count.
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(n) *
                static_cast<std::size_t>(n - 1) / 2);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  std::vector<std::uint8_t> above(pairs.size(), 0);

  const auto compare_one = [&](std::int64_t p) {
    const auto [i, j] = pairs[static_cast<std::size_t>(p)];
    const double sim = pair_similarity(cones[static_cast<std::size_t>(i)],
                                       cones[static_cast<std::size_t>(j)],
                                       options);
    if (sim >= options.group_threshold)
      above[static_cast<std::size_t>(p)] = 1;
  };
  const int threads = options.num_threads == 1
                          ? 1
                          : runtime::resolve_thread_count(options.num_threads);
  if (threads <= 1) {
    runtime::serial_for(0, static_cast<std::int64_t>(pairs.size()),
                        compare_one);
  } else {
    // The calling thread participates, so spawn threads - 1 workers.
    runtime::ThreadPool pool(std::max(1, threads - 1));
    runtime::parallel_for(pool, 0, static_cast<std::int64_t>(pairs.size()),
                          compare_one);
  }

  for (std::size_t p = 0; p < pairs.size(); ++p) {
    if (!above[p]) continue;
    parent[static_cast<std::size_t>(find(pairs[p].first))] =
        find(pairs[p].second);
  }

  result.labels.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> root_label(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (int i = 0; i < n; ++i) {
    const int root = find(i);
    if (root_label[static_cast<std::size_t>(root)] < 0)
      root_label[static_cast<std::size_t>(root)] = next++;
    result.labels[static_cast<std::size_t>(i)] =
        root_label[static_cast<std::size_t>(root)];
  }
  result.num_words = next;
  result.total_seconds = timer.seconds();
  return result;
}

}  // namespace rebert::structural
