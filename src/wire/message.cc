#include "wire/message.h"

#include <cstring>
#include <limits>

#include "util/check.h"
#include "util/string_utils.h"
#include "wire/frame.h"

namespace rebert::wire {

namespace {

struct __attribute__((__packed__)) RequestHeader {
  std::uint8_t verb;
  std::uint8_t reserved;
  std::uint16_t bench_len;
  std::uint16_t bit_a_len;
  std::uint16_t bit_b_len;
  std::uint16_t model_len;
  std::uint16_t reserved2;
  std::uint32_t deadline_ms;
};
static_assert(sizeof(RequestHeader) == 16,
              "request header layout drifted from the wire format");

struct __attribute__((__packed__)) ResponseHeader {
  std::uint8_t verb;
  std::uint8_t status;
  std::uint8_t code;
  std::uint8_t flags;
  std::uint32_t retry_after_ms;
  double score;
  std::uint32_t body_len;
  std::uint32_t reserved;
};
static_assert(sizeof(ResponseHeader) == 24,
              "response header layout drifted from the wire format");

bool valid_verb(std::uint8_t verb) {
  return verb >= static_cast<std::uint8_t>(Verb::kScore) &&
         verb <= static_cast<std::uint8_t>(Verb::kQuit);
}

std::uint16_t checked_len(const std::string& field, const char* name) {
  REBERT_CHECK_MSG(field.size() <= std::numeric_limits<std::uint16_t>::max(),
                   std::string("wire request ") + name + " field of " +
                       std::to_string(field.size()) +
                       " bytes does not fit a u16 length");
  return static_cast<std::uint16_t>(field.size());
}

}  // namespace

std::string encode_request(const Request& request) {
  RequestHeader header{};
  header.verb = static_cast<std::uint8_t>(request.verb);
  header.reserved = 0;
  header.bench_len = checked_len(request.bench, "bench");
  header.bit_a_len = checked_len(request.bit_a, "bit_a");
  header.bit_b_len = checked_len(request.bit_b, "bit_b");
  header.model_len = checked_len(request.model, "model");
  header.reserved2 = 0;
  header.deadline_ms = request.deadline_ms;
  std::string payload;
  payload.reserve(sizeof(header) + request.bench.size() +
                  request.bit_a.size() + request.bit_b.size() +
                  request.model.size());
  payload.append(reinterpret_cast<const char*>(&header), sizeof(header));
  payload.append(request.bench);
  payload.append(request.bit_a);
  payload.append(request.bit_b);
  payload.append(request.model);
  return encode_frame(FrameType::kRequest, payload);
}

bool decode_request_payload(std::string_view payload, Request* request,
                            std::string* error) {
  RequestHeader header;
  if (payload.size() < sizeof(header)) {
    if (error)
      *error = "request payload of " + std::to_string(payload.size()) +
               " bytes is shorter than its header";
    return false;
  }
  std::memcpy(&header, payload.data(), sizeof(header));
  if (!valid_verb(header.verb)) {
    if (error) *error = "unknown verb " + std::to_string(header.verb);
    return false;
  }
  if (header.reserved != 0 || header.reserved2 != 0) {
    if (error) *error = "request reserved bits set";
    return false;
  }
  // The declared field lengths must tile the payload exactly — no
  // overlap, no trailing garbage — before any substring is taken.
  const std::size_t want = sizeof(header) +
                           static_cast<std::size_t>(header.bench_len) +
                           header.bit_a_len + header.bit_b_len +
                           header.model_len;
  if (payload.size() != want) {
    if (error)
      *error = "request field lengths declare " + std::to_string(want) +
               " bytes, payload has " + std::to_string(payload.size());
    return false;
  }
  request->verb = static_cast<Verb>(header.verb);
  request->deadline_ms = header.deadline_ms;
  std::size_t at = sizeof(header);
  request->bench.assign(payload.substr(at, header.bench_len));
  at += header.bench_len;
  request->bit_a.assign(payload.substr(at, header.bit_a_len));
  at += header.bit_a_len;
  request->bit_b.assign(payload.substr(at, header.bit_b_len));
  at += header.bit_b_len;
  request->model.assign(payload.substr(at, header.model_len));
  return true;
}

std::string encode_response(const Response& response) {
  ResponseHeader header{};
  header.verb = static_cast<std::uint8_t>(response.verb);
  header.status = static_cast<std::uint8_t>(response.status);
  header.code = static_cast<std::uint8_t>(response.code);
  header.flags = response.flags;
  header.retry_after_ms = response.retry_after_ms;
  header.score = response.score;
  REBERT_CHECK_MSG(
      response.body.size() <= std::numeric_limits<std::uint32_t>::max(),
      "wire response body does not fit a u32 length");
  header.body_len = static_cast<std::uint32_t>(response.body.size());
  header.reserved = 0;
  std::string payload;
  payload.reserve(sizeof(header) + response.body.size());
  payload.append(reinterpret_cast<const char*>(&header), sizeof(header));
  payload.append(response.body);
  return encode_frame(FrameType::kResponse, payload);
}

bool decode_response_payload(std::string_view payload, Response* response,
                             std::string* error) {
  ResponseHeader header;
  if (payload.size() < sizeof(header)) {
    if (error)
      *error = "response payload of " + std::to_string(payload.size()) +
               " bytes is shorter than its header";
    return false;
  }
  std::memcpy(&header, payload.data(), sizeof(header));
  if (!valid_verb(header.verb)) {
    if (error) *error = "unknown verb " + std::to_string(header.verb);
    return false;
  }
  if (header.status > static_cast<std::uint8_t>(Status::kErr)) {
    if (error) *error = "unknown status " + std::to_string(header.status);
    return false;
  }
  if (header.code > static_cast<std::uint8_t>(ErrorCode::kNoBackend)) {
    if (error) *error = "unknown error code " + std::to_string(header.code);
    return false;
  }
  if (header.reserved != 0) {
    if (error) *error = "response reserved bits set";
    return false;
  }
  if (payload.size() != sizeof(header) + header.body_len) {
    if (error)
      *error = "response body length declares " +
               std::to_string(header.body_len) + " bytes, payload has " +
               std::to_string(payload.size() - sizeof(header));
    return false;
  }
  response->verb = static_cast<Verb>(header.verb);
  response->status = static_cast<Status>(header.status);
  response->code = static_cast<ErrorCode>(header.code);
  response->flags = header.flags;
  response->retry_after_ms = header.retry_after_ms;
  response->score = header.score;
  response->body.assign(payload.substr(sizeof(header)));
  return true;
}

std::string response_to_line(const Response& response) {
  if (response.status == Status::kOk) {
    std::string payload;
    if (response.flags & kFlagScore) {
      payload = util::format_double(response.score, 6);
    } else {
      payload = response.body;
    }
    if (response.flags & kFlagDegraded) payload += " degraded=structural";
    return payload.empty() ? "ok" : "ok " + payload;
  }
  switch (response.code) {
    case ErrorCode::kOverloaded:
      return "err overloaded retry_after_ms=" +
             std::to_string(response.retry_after_ms);
    case ErrorCode::kDeadlineExceeded:
      return "err deadline_exceeded";
    case ErrorCode::kNoBackend:
      return "err no_backend retry_after_ms=" +
             std::to_string(response.retry_after_ms);
    case ErrorCode::kNone:
    case ErrorCode::kGeneric:
      break;
  }
  return "err " + response.body;
}

Response ok_response(Verb verb, std::string body) {
  Response response;
  response.verb = verb;
  response.status = Status::kOk;
  response.body = std::move(body);
  return response;
}

Response score_response(double score) {
  Response response;
  response.verb = Verb::kScore;
  response.status = Status::kOk;
  response.flags = kFlagScore;
  response.score = score;
  return response;
}

Response error_response(Verb verb, std::string message) {
  Response response;
  response.verb = verb;
  response.status = Status::kErr;
  response.code = ErrorCode::kGeneric;
  response.body = std::move(message);
  return response;
}

Response overloaded_response(int retry_after_ms) {
  Response response;
  response.verb = Verb::kScore;
  response.status = Status::kErr;
  response.code = ErrorCode::kOverloaded;
  response.retry_after_ms = static_cast<std::uint32_t>(retry_after_ms);
  return response;
}

Response no_backend_response(int retry_after_ms) {
  Response response;
  response.verb = Verb::kScore;
  response.status = Status::kErr;
  response.code = ErrorCode::kNoBackend;
  response.retry_after_ms = static_cast<std::uint32_t>(retry_after_ms);
  return response;
}

Response deadline_response(Verb verb) {
  Response response;
  response.verb = verb;
  response.status = Status::kErr;
  response.code = ErrorCode::kDeadlineExceeded;
  return response;
}

}  // namespace rebert::wire
