// Binary wire framing — the length-prefixed, checksummed envelope under
// the serving runtime's binary protocol.
//
// Every frame is a fixed 16-byte packed header followed by payload bytes:
//
//   u8   magic        0xAB — deliberately non-printable, so the first byte
//                     of a connection distinguishes binary from the text
//                     protocol (no text verb can start with it)
//   u8   type         FrameType
//   u16  reserved     must be zero
//   u32  payload_len  <= kMaxFramePayload
//   u64  checksum     FNV-1a over the payload bytes
//
// Fields are native-endian (the project targets little-endian hosts only;
// same policy as the RBPC / RBTW artifact formats — see DESIGN.md "Wire
// format & artifact layout"). Decoding validates magic, reserved bits,
// type range, the length cap, and the checksum before a single payload
// byte is trusted; one malformed frame poisons the stream (the reader
// stays failed), because after a framing error the byte stream has no
// recoverable synchronization point.
//
// Negotiation: a client that wants binary opens with a kHello frame
// ("RBWP" tag + version); the server answers kHelloAck and the connection
// speaks frames from then on. Connections that open with anything else are
// served as newline text — old clients and humans never see a frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace rebert::wire {

inline constexpr unsigned char kFrameMagic = 0xAB;
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard cap on a single frame's payload. Requests and responses are a few
/// hundred bytes; anything near the cap is a hostile or corrupt stream.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,     // client -> server: protocol negotiation
  kHelloAck = 2,  // server -> client: negotiation accepted
  kRequest = 3,   // encoded wire::Request (message.h)
  kResponse = 4,  // encoded wire::Response (message.h)
  kError = 5,     // protocol-level failure; payload is a text diagnosis
};

/// FNV-1a over `size` bytes — the same hash the RBPC snapshot trailer
/// uses, so one implementation is testable against the other.
std::uint64_t fnv1a(const void* data, std::size_t size);

/// One decoded, checksum-verified frame. `raw` is the exact frame bytes
/// (header + payload) as they appeared on the stream — what the router
/// forwards verbatim so a relay never re-encodes.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
  std::string raw;
};

/// Assemble one complete frame (header + payload). Checks the payload cap
/// via util::CheckError — callers build payloads, so an oversized one is a
/// programming error, not input.
std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame decoder for a byte stream. feed() appends received
/// bytes; next() yields complete verified frames. After any framing error
/// (bad magic, reserved bits set, unknown type, length over cap, checksum
/// mismatch) the reader is poisoned: every further next() reports the same
/// error and the connection must be dropped.
class FrameReader {
 public:
  enum class Status {
    kNeedMore,  // no complete frame buffered yet
    kFrame,     // *frame filled with the next verified frame
    kError,     // stream poisoned; *error explains
  };

  void feed(const char* data, std::size_t size) {
    buffer_.append(data, size);
  }
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  Status next(Frame* frame, std::string* error);

  /// Bytes received but not yet consumed by a complete frame. Non-zero at
  /// connection EOF means the peer vanished mid-frame.
  std::size_t buffered() const { return buffer_.size(); }

  void reset() {
    buffer_.clear();
    error_.clear();
    failed_ = false;
  }

 private:
  Status fail(std::string message, std::string* error);

  std::string buffer_;
  std::string error_;
  bool failed_ = false;
};

/// Negotiation frames. The hello payload is a packed {tag "RBWP",
/// u16 version, u16 reserved}; decode_hello_payload validates tag and
/// reserved bits and reports the peer's version.
std::string encode_hello();
std::string encode_hello_ack();
bool decode_hello_payload(std::string_view payload, std::uint16_t* version,
                          std::string* error);

/// A kError frame carrying a one-line diagnosis (sent before dropping a
/// connection that broke framing).
std::string encode_protocol_error(std::string_view message);

}  // namespace rebert::wire
