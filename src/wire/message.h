// Binary request/response messages carried inside kRequest / kResponse
// frames (frame.h). The message layer mirrors the newline text protocol
// verb for verb — same verbs, same distinguished errors, same degraded
// tag — so the two encodings are interchangeable views of one protocol:
// response_to_line() renders any Response as the exact text line the text
// protocol would have produced, which is what keeps retry/backoff logic
// and every existing log-line consumer encoding-agnostic.
//
// Request payload (packed header, then the four string fields back to
// back, lengths from the header):
//
//   u8   verb          u8   reserved
//   u16  bench_len     u16  bit_a_len    u16  bit_b_len   u16  model_len
//   u16  reserved2     u32  deadline_ms
//
// Response payload:
//
//   u8   verb   u8 status   u8 code   u8 flags
//   u32  retry_after_ms
//   f64  score            (meaningful when flags & kFlagScore)
//   u32  body_len         u32 reserved
//   body bytes            (ok payload text, or the error message)
//
// Decoding validates every length against the payload size before any
// field is read; a malformed message answers this request with an error,
// it never tears the connection down (framing-level corruption does —
// see frame.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rebert::wire {

enum class Verb : std::uint8_t {
  kScore = 1,
  kRecover = 2,
  kStats = 3,
  kHealth = 4,
  kHelp = 5,
  kQuit = 6,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kErr = 1,
};

/// Machine-parseable error classes, mirroring the text protocol's
/// distinguished `err` payloads.
enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kGeneric = 1,           // "err <message>"
  kOverloaded = 2,        // "err overloaded retry_after_ms=<n>"
  kDeadlineExceeded = 3,  // "err deadline_exceeded"
  kNoBackend = 4,         // "err no_backend retry_after_ms=<n>" (router)
};

/// Response.flags bits.
inline constexpr std::uint8_t kFlagDegraded = 0x1;  // degraded=structural
inline constexpr std::uint8_t kFlagScore = 0x2;     // score field is live

struct Request {
  Verb verb = Verb::kHelp;
  std::string bench;   // score / recover
  std::string bit_a;   // score
  std::string bit_b;   // score
  std::string model;   // "" = engine's size rule
  std::uint32_t deadline_ms = 0;
};

struct Response {
  Verb verb = Verb::kHelp;  // echoes the request verb
  Status status = Status::kOk;
  ErrorCode code = ErrorCode::kNone;
  std::uint8_t flags = 0;
  std::uint32_t retry_after_ms = 0;
  double score = 0.0;  // meaningful when flags & kFlagScore
  std::string body;    // ok payload text, or the error message
};

/// Encode to a complete frame (header included), ready to send.
std::string encode_request(const Request& request);
std::string encode_response(const Response& response);

/// Decode a kRequest / kResponse frame payload. Returns false with *error
/// set on any malformed field; nothing is trusted before its bounds check.
bool decode_request_payload(std::string_view payload, Request* request,
                            std::string* error);
bool decode_response_payload(std::string_view payload, Response* response,
                             std::string* error);

/// Render a Response as the exact line the text protocol would produce
/// for the same outcome ("ok 0.123456", "err overloaded
/// retry_after_ms=50", "ok words=... degraded=structural", ...).
std::string response_to_line(const Response& response);

/// Response constructors for the common shapes.
Response ok_response(Verb verb, std::string body);
Response score_response(double score);
Response error_response(Verb verb, std::string message);
Response overloaded_response(int retry_after_ms);
Response no_backend_response(int retry_after_ms);
Response deadline_response(Verb verb);

}  // namespace rebert::wire
