#include "wire/frame.h"

#include <cstring>

#include "util/check.h"

namespace rebert::wire {

namespace {

/// The on-stream header. Packed: the layout IS the format, so the struct
/// must match the documented byte offsets exactly.
struct __attribute__((__packed__)) FrameHeader {
  std::uint8_t magic;
  std::uint8_t type;
  std::uint16_t reserved;
  std::uint32_t payload_len;
  std::uint64_t checksum;
};
static_assert(sizeof(FrameHeader) == kFrameHeaderBytes,
              "frame header layout drifted from the wire format");

struct __attribute__((__packed__)) HelloPayload {
  char tag[4];
  std::uint16_t version;
  std::uint16_t reserved;
};
constexpr char kHelloTag[4] = {'R', 'B', 'W', 'P'};

std::string encode_hello_frame(FrameType type) {
  HelloPayload hello{};
  std::memcpy(hello.tag, kHelloTag, sizeof(kHelloTag));
  hello.version = kWireVersion;
  hello.reserved = 0;
  return encode_frame(
      type, std::string_view(reinterpret_cast<const char*>(&hello),
                             sizeof(hello)));
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  REBERT_CHECK_MSG(payload.size() <= kMaxFramePayload,
                   "wire frame payload of " + std::to_string(payload.size()) +
                       " bytes exceeds the " +
                       std::to_string(kMaxFramePayload) + "-byte cap");
  FrameHeader header{};
  header.magic = kFrameMagic;
  header.type = static_cast<std::uint8_t>(type);
  header.reserved = 0;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  header.checksum = fnv1a(payload.data(), payload.size());
  std::string frame;
  frame.reserve(sizeof(header) + payload.size());
  frame.append(reinterpret_cast<const char*>(&header), sizeof(header));
  frame.append(payload);
  return frame;
}

FrameReader::Status FrameReader::fail(std::string message,
                                      std::string* error) {
  failed_ = true;
  error_ = std::move(message);
  if (error) *error = error_;
  return Status::kError;
}

FrameReader::Status FrameReader::next(Frame* frame, std::string* error) {
  if (failed_) {
    if (error) *error = error_;
    return Status::kError;
  }
  if (buffer_.size() < kFrameHeaderBytes) return Status::kNeedMore;

  FrameHeader header;
  std::memcpy(&header, buffer_.data(), sizeof(header));
  if (header.magic != kFrameMagic)
    return fail("bad frame magic 0x" + std::to_string(header.magic) +
                    " (stream desynchronized or not a wire frame)",
                error);
  if (header.reserved != 0)
    return fail("frame reserved bits set (corrupt header)", error);
  if (header.type < static_cast<std::uint8_t>(FrameType::kHello) ||
      header.type > static_cast<std::uint8_t>(FrameType::kError))
    return fail("unknown frame type " + std::to_string(header.type), error);
  if (header.payload_len > kMaxFramePayload)
    return fail("frame payload length " + std::to_string(header.payload_len) +
                    " exceeds the " + std::to_string(kMaxFramePayload) +
                    "-byte cap",
                error);

  const std::size_t total =
      kFrameHeaderBytes + static_cast<std::size_t>(header.payload_len);
  if (buffer_.size() < total) return Status::kNeedMore;

  const char* payload = buffer_.data() + kFrameHeaderBytes;
  if (fnv1a(payload, header.payload_len) != header.checksum)
    return fail("frame checksum mismatch (corrupt payload)", error);

  frame->type = static_cast<FrameType>(header.type);
  frame->payload.assign(payload, header.payload_len);
  frame->raw.assign(buffer_.data(), total);
  buffer_.erase(0, total);
  return Status::kFrame;
}

std::string encode_hello() { return encode_hello_frame(FrameType::kHello); }

std::string encode_hello_ack() {
  return encode_hello_frame(FrameType::kHelloAck);
}

bool decode_hello_payload(std::string_view payload, std::uint16_t* version,
                          std::string* error) {
  HelloPayload hello;
  if (payload.size() != sizeof(hello)) {
    if (error)
      *error = "hello payload is " + std::to_string(payload.size()) +
               " bytes (want " + std::to_string(sizeof(hello)) + ")";
    return false;
  }
  std::memcpy(&hello, payload.data(), sizeof(hello));
  if (std::memcmp(hello.tag, kHelloTag, sizeof(kHelloTag)) != 0) {
    if (error) *error = "hello tag mismatch (not a wire protocol hello)";
    return false;
  }
  if (hello.reserved != 0) {
    if (error) *error = "hello reserved bits set";
    return false;
  }
  if (version) *version = hello.version;
  return true;
}

std::string encode_protocol_error(std::string_view message) {
  return encode_frame(FrameType::kError, message);
}

}  // namespace rebert::wire
