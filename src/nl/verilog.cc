#include "nl/verilog.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::nl {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw VerilogError("verilog parse error: " + message);
}

std::string strip_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
    } else if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < text.size() &&
             !(text[i] == '*' && text[i + 1] == '/'))
        ++i;
      i = std::min(text.size(), i + 2);
      out += ' ';
    } else {
      out += text[i++];
    }
  }
  return out;
}

// Splits "a , b[2] , c" into trimmed pieces.
std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& piece : util::split(text, ',')) {
    const std::string item = util::trim(piece);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

struct Declaration {
  std::vector<std::string> names;  // vector ranges already expanded
};

// Parses the tail of an input/output/wire statement: "[3:0] bus, x".
Declaration parse_declaration(const std::string& tail) {
  Declaration decl;
  std::string rest = util::trim(tail);
  int msb = -1, lsb = -1;
  if (!rest.empty() && rest.front() == '[') {
    const std::size_t close = rest.find(']');
    if (close == std::string::npos) fail("unterminated range in '" + rest + "'");
    const std::string range = rest.substr(1, close - 1);
    const std::size_t colon = range.find(':');
    if (colon == std::string::npos) fail("bad range '" + range + "'");
    // Checked parse: "[x:0]" or an overflow-sized index must fail through
    // fail() with the offending text, not escape as std::invalid_argument.
    if (!util::parse_int(util::trim(range.substr(0, colon)), &msb) ||
        !util::parse_int(util::trim(range.substr(colon + 1)), &lsb))
      fail("bad range index in '[" + range + "]'");
    if (msb < 0 || lsb < 0) fail("negative range index in '[" + range + "]'");
    rest = util::trim(rest.substr(close + 1));
  }
  for (const std::string& name : split_list(rest)) {
    if (msb < 0) {
      decl.names.push_back(name);
    } else {
      const int step = msb >= lsb ? -1 : 1;
      for (int i = msb;; i += step) {
        decl.names.push_back(name + "[" + std::to_string(i) + "]");
        if (i == lsb) break;
      }
    }
  }
  return decl;
}

struct Instance {
  GateType type;
  std::vector<std::string> args;  // output first
};

struct Assign {
  std::string lhs;
  std::string rhs;  // identifier or 1'b0 / 1'b1
};

bool is_const_literal(const std::string& token, bool* value) {
  if (token == "1'b0" || token == "1'B0") {
    *value = false;
    return true;
  }
  if (token == "1'b1" || token == "1'B1") {
    *value = true;
    return true;
  }
  return false;
}

}  // namespace

Netlist parse_verilog(std::istream& in) {
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  const std::string text = strip_comments(raw);

  // Statement scan: ';'-separated, with module header and endmodule as
  // anchors.
  std::vector<std::string> statements;
  std::string current;
  for (char c : text) {
    if (c == ';') {
      statements.push_back(util::trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string trailing = util::trim(current);
  if (!trailing.empty()) statements.push_back(trailing);

  std::string module_name;
  std::vector<std::string> inputs, outputs;
  std::vector<Instance> instances;
  std::vector<Assign> assigns;
  bool saw_module = false, saw_end = false;

  for (std::string statement : statements) {
    if (statement.empty()) continue;
    // endmodule can be glued to the final statement (no ';' after it).
    if (util::ends_with(statement, "endmodule")) {
      statement = util::trim(
          statement.substr(0, statement.size() - std::string("endmodule").size()));
      saw_end = true;
      if (statement.empty()) continue;
    }
    const std::vector<std::string> words = util::split_ws(statement);
    const std::string& keyword = words[0];

    if (keyword == "module") {
      if (saw_module) fail("multiple modules (flatten first)");
      saw_module = true;
      const std::size_t open = statement.find('(');
      module_name = util::trim(
          statement.substr(6, (open == std::string::npos
                                   ? statement.size()
                                   : open) - 6));
      continue;  // port list is implied by the declarations
    }
    if (!saw_module) fail("statement before module header: " + statement);

    if (keyword == "input" || keyword == "output" || keyword == "wire") {
      const Declaration decl =
          parse_declaration(statement.substr(keyword.size()));
      if (keyword == "input")
        inputs.insert(inputs.end(), decl.names.begin(), decl.names.end());
      else if (keyword == "output")
        outputs.insert(outputs.end(), decl.names.begin(), decl.names.end());
      // wires are implicit (every net has a driver)
      continue;
    }
    if (keyword == "assign") {
      const std::size_t eq = statement.find('=');
      if (eq == std::string::npos) fail("assign without '='");
      Assign assign;
      assign.lhs = util::trim(statement.substr(6, eq - 6));
      assign.rhs = util::trim(statement.substr(eq + 1));
      if (assign.lhs.empty() || assign.rhs.empty())
        fail("malformed assign: " + statement);
      assigns.push_back(std::move(assign));
      continue;
    }

    // Gate primitive: type [instance] ( args ).
    GateType type;
    try {
      type = gate_type_from_name(keyword);
    } catch (const util::CheckError&) {
      fail("unsupported construct '" + keyword + "' (flatten to gate "
           "primitives first)");
    }
    const std::size_t open = statement.find('(');
    const std::size_t close = statement.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
      fail("malformed instance: " + statement);
    Instance instance;
    instance.type = type;
    instance.args = split_list(statement.substr(open + 1, close - open - 1));
    if (instance.args.size() < 2)
      fail("primitive needs an output and at least one input: " + statement);
    instances.push_back(std::move(instance));
  }
  if (!saw_module) fail("no module found");
  if (!saw_end) fail("missing endmodule");

  // Build the netlist with the same two-pass strategy as the .bench
  // parser: sources and DFFs first, then combinational gates with
  // placeholder fanins, then rewiring.
  Netlist netlist(module_name.empty() ? "top" : module_name);
  for (const std::string& name : inputs) {
    if (netlist.find(name)) fail("input '" + name + "' declared twice");
    netlist.add_input(name);
  }

  // Names that will be defined later; internal literal-constant gates must
  // not squat on any of them.
  std::unordered_set<std::string> future_names(inputs.begin(), inputs.end());
  for (const Instance& instance : instances)
    future_names.insert(instance.args[0]);
  for (const Assign& assign : assigns) future_names.insert(assign.lhs);

  GateId const0 = kNoGate, const1 = kNoGate;
  auto get_const = [&](bool value) {
    GateId& slot = value ? const1 : const0;
    if (slot == kNoGate) {
      std::string name = value ? "lit1" : "lit0";
      while (future_names.count(name) || netlist.find(name)) name += "_";
      slot = netlist.add_const(value, name);
    }
    return slot;
  };
  // Pre-create constants referenced anywhere so placeholder ids exist.
  for (const Instance& instance : instances)
    for (std::size_t i = 1; i < instance.args.size(); ++i) {
      bool value = false;
      if (is_const_literal(instance.args[i], &value)) get_const(value);
    }
  for (const Assign& assign : assigns) {
    bool value = false;
    if (is_const_literal(assign.rhs, &value)) get_const(value);
  }

  struct Pending {
    GateId id;
    std::vector<std::string> fanin_names;
  };
  std::vector<Pending> pending;

  auto define = [&](const std::string& name) {
    if (netlist.find(name)) fail("net '" + name + "' driven twice");
  };

  for (const Instance& instance : instances) {
    if (instance.type != GateType::kDff) continue;
    if (instance.args.size() != 2) fail("dff expects (Q, D)");
    define(instance.args[0]);
    const GateId self = static_cast<GateId>(netlist.num_gates());
    const GateId id = netlist.add_dff(self, instance.args[0]);
    pending.push_back({id, {instance.args[1]}});
  }
  for (const Instance& instance : instances) {
    if (instance.type == GateType::kDff) continue;
    define(instance.args[0]);
    if (netlist.num_gates() == 0)
      fail("combinational netlist without any source");
    const std::vector<GateId> placeholder(instance.args.size() - 1, 0);
    const GateId id =
        netlist.add_gate(instance.type, placeholder, instance.args[0]);
    pending.push_back(
        {id, {instance.args.begin() + 1, instance.args.end()}});
  }
  for (const Assign& assign : assigns) {
    define(assign.lhs);
    bool value = false;
    if (is_const_literal(assign.rhs, &value)) {
      // Tie: materialize as BUF of the constant so the name exists.
      netlist.add_gate(GateType::kBuf, {get_const(value)}, assign.lhs);
    } else {
      if (netlist.num_gates() == 0) fail("assign before any source");
      const GateId id =
          netlist.add_gate(GateType::kBuf, {static_cast<GateId>(0)},
                           assign.lhs);
      pending.push_back({id, {assign.rhs}});
    }
  }

  for (const Pending& p : pending) {
    std::vector<GateId> fanins;
    fanins.reserve(p.fanin_names.size());
    for (const std::string& name : p.fanin_names) {
      bool value = false;
      if (is_const_literal(name, &value)) {
        fanins.push_back(get_const(value));
        continue;
      }
      const auto ref = netlist.find(name);
      if (!ref) fail("undriven net '" + name + "'");
      fanins.push_back(*ref);
    }
    netlist.replace_gate(p.id, netlist.gate(p.id).type, std::move(fanins));
  }

  for (const std::string& name : outputs) {
    const auto ref = netlist.find(name);
    if (!ref) fail("output '" + name + "' has no driver");
    netlist.mark_output(*ref);
  }

  netlist.validate();
  return netlist;
}

Netlist parse_verilog_string(const std::string& text) {
  std::istringstream in(text);
  return parse_verilog(in);
}

Netlist parse_verilog_file(const std::string& path) {
  std::ifstream in(path);
  REBERT_CHECK_MSG(in.good(), "cannot open verilog file " << path);
  return parse_verilog(in);
}

void write_verilog(const Netlist& netlist, std::ostream& out) {
  // Sanitized module name (identifiers only).
  std::string module_name = netlist.name().empty() ? "top" : netlist.name();
  for (char& c : module_name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';

  std::vector<std::string> port_names;
  for (GateId id : netlist.inputs()) port_names.push_back(netlist.gate(id).name);
  for (GateId id : netlist.outputs())
    port_names.push_back(netlist.gate(id).name);

  out << "module " << module_name << " (" << util::join(port_names, ", ")
      << ");\n";
  for (GateId id : netlist.inputs())
    out << "  input " << netlist.gate(id).name << ";\n";
  for (GateId id : netlist.outputs())
    out << "  output " << netlist.gate(id).name << ";\n";
  for (GateId id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    if (g.type == GateType::kInput || netlist.is_output(id)) continue;
    out << "  wire " << g.name << ";\n";
  }
  int instance_counter = 0;
  for (GateId id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    switch (g.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        out << "  assign " << g.name << " = 1'b0;\n";
        break;
      case GateType::kConst1:
        out << "  assign " << g.name << " = 1'b1;\n";
        break;
      default: {
        out << "  " << util::to_lower(gate_type_name(g.type)) << " g"
            << instance_counter++ << " (" << g.name;
        for (GateId f : g.fanins) out << ", " << netlist.gate(f).name;
        out << ");\n";
      }
    }
  }
  out << "endmodule\n";
}

std::string write_verilog_string(const Netlist& netlist) {
  std::ostringstream out;
  write_verilog(netlist, out);
  return out.str();
}

void write_verilog_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  REBERT_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_verilog(netlist, out);
}

}  // namespace rebert::nl
