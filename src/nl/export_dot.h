// Graphviz DOT export for netlists and cones.
//
// Visual inspection is half of reverse engineering; this writes the
// netlist (or one bit's fan-in cone) as a DOT digraph with word groupings
// rendered as clusters, ready for `dot -Tsvg`.
#pragma once

#include <iosfwd>
#include <string>

#include "nl/cone.h"
#include "nl/netlist.h"
#include "nl/words.h"

namespace rebert::nl {

struct DotOptions {
  bool cluster_words = true;   // draw each word's DFFs in a subgraph box
  bool show_gate_types = true; // node labels "name\nTYPE" vs just name
  int max_gates = 4000;        // refuse to render monsters (throws)
};

/// Whole netlist; `words` may be empty (no clusters).
void write_dot(const Netlist& netlist, const WordMap& words,
               std::ostream& out, const DotOptions& options = {});
std::string dot_string(const Netlist& netlist, const WordMap& words,
                       const DotOptions& options = {});

/// One extracted cone as a tree.
std::string cone_dot_string(const ConeTree& tree);

}  // namespace rebert::nl
