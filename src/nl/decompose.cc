#include "nl/decompose.h"

#include "util/check.h"

namespace rebert::nl {

namespace {

// Builds a chain/tree of `op2` gates over `terms` inside `out`; returns the
// id of the final gate. `terms` has >= 1 entries; a single term is returned
// unchanged.
GateId build_tree(Netlist* out, GateType op2, std::vector<GateId> terms,
                  bool balanced) {
  REBERT_CHECK(!terms.empty());
  if (balanced) {
    while (terms.size() > 1) {
      std::vector<GateId> next;
      next.reserve((terms.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2)
        next.push_back(out->add_gate(op2, {terms[i], terms[i + 1]}));
      if (terms.size() % 2) next.push_back(terms.back());
      terms = std::move(next);
    }
    return terms[0];
  }
  GateId acc = terms[0];
  for (std::size_t i = 1; i < terms.size(); ++i)
    acc = out->add_gate(op2, {acc, terms[i]});
  return acc;
}

// Rewrites wide gate `id` (original type/fanins already mapped) into a
// 2-input tree. The gate itself becomes the final (possibly inverting) node
// so its name and fanout survive.
void lower_wide_gate(Netlist* out, GateId id, GateType type,
                     const std::vector<GateId>& fanins, bool balanced) {
  REBERT_CHECK(fanins.size() > 2);
  std::vector<GateId> head(fanins.begin(), fanins.end() - 1);
  switch (type) {
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kXor: {
      // Associative: tree over all but the last fanin, root of same type.
      const GateId acc = build_tree(out, type, std::move(head), balanced);
      out->replace_gate(id, type, {acc, fanins.back()});
      return;
    }
    case GateType::kNand: {
      const GateId acc =
          build_tree(out, GateType::kAnd, std::move(head), balanced);
      out->replace_gate(id, GateType::kNand, {acc, fanins.back()});
      return;
    }
    case GateType::kNor: {
      const GateId acc =
          build_tree(out, GateType::kOr, std::move(head), balanced);
      out->replace_gate(id, GateType::kNor, {acc, fanins.back()});
      return;
    }
    case GateType::kXnor: {
      const GateId acc =
          build_tree(out, GateType::kXor, std::move(head), balanced);
      out->replace_gate(id, GateType::kXnor, {acc, fanins.back()});
      return;
    }
    default:
      REBERT_CHECK_MSG(false, "gate type " << gate_type_name(type)
                                           << " is not decomposable");
  }
}

}  // namespace

Netlist decompose_to_2input(const Netlist& input,
                            const DecomposeOptions& options) {
  Netlist out(input.name());

  // Pass A: create every original gate first (placeholder fanins for
  // anything with inputs). Having all original names registered up front
  // guarantees that auto-generated helper names in pass B cannot collide
  // with them. Order: sources, DFFs (self placeholder), then combinational
  // gates in topological order.
  std::vector<GateId> remap(input.num_gates(), kNoGate);
  for (GateId id = 0; id < input.num_gates(); ++id) {
    const Gate& g = input.gate(id);
    if (g.type == GateType::kInput) {
      remap[id] = out.add_input(g.name);
    } else if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
      remap[id] = out.add_const(g.type == GateType::kConst1, g.name);
    } else if (g.type == GateType::kDff) {
      const GateId self = static_cast<GateId>(out.num_gates());
      remap[id] = out.add_dff(self, g.name);
    }
  }
  const std::vector<GateId> topo = input.topological_order();
  for (GateId id : topo) {
    const Gate& g = input.gate(id);
    // Placeholder fanins: arity matched to the final 2-input form.
    std::size_t arity = g.fanins.size();
    if (g.type == GateType::kMux && options.lower_mux) arity = 2;  // -> OR2
    if (is_decomposable(g.type) && arity > 2) arity = 2;
    REBERT_CHECK_MSG(out.num_gates() > 0,
                     "combinational netlist without sources is cyclic");
    const GateType placeholder_type =
        (g.type == GateType::kMux && options.lower_mux) ? GateType::kOr
                                                        : g.type;
    remap[id] = out.add_gate(placeholder_type,
                             std::vector<GateId>(arity, 0), g.name);
  }

  // Pass B: rewire each combinational gate, adding helper gates as needed.
  for (GateId id : topo) {
    const Gate& g = input.gate(id);
    std::vector<GateId> fanins;
    fanins.reserve(g.fanins.size());
    for (GateId f : g.fanins) {
      REBERT_CHECK(remap[f] != kNoGate);
      fanins.push_back(remap[f]);
    }
    const GateId new_id = remap[id];

    if (g.type == GateType::kMux && options.lower_mux) {
      const GateId sel = fanins[0], a = fanins[1], b = fanins[2];
      const GateId nsel = out.add_gate(GateType::kNot, {sel});
      const GateId lo = out.add_gate(GateType::kAnd, {nsel, a});
      const GateId hi = out.add_gate(GateType::kAnd, {sel, b});
      out.replace_gate(new_id, GateType::kOr, {lo, hi});
      continue;
    }
    if (is_decomposable(g.type) && fanins.size() > 2) {
      lower_wide_gate(&out, new_id, g.type, fanins, options.balanced);
      continue;
    }
    out.replace_gate(new_id, g.type, std::move(fanins));
  }

  // Pass C: DFF D pins and primary outputs.
  for (GateId id = 0; id < input.num_gates(); ++id) {
    const Gate& g = input.gate(id);
    if (g.type != GateType::kDff) continue;
    REBERT_CHECK(remap[g.fanins[0]] != kNoGate);
    out.replace_gate(remap[id], GateType::kDff, {remap[g.fanins[0]]});
  }
  for (GateId id : input.outputs()) out.mark_output(remap[id]);

  out.validate();
  return out;
}

bool is_2input(const Netlist& netlist) {
  for (GateId id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    if (!is_combinational(g.type)) continue;
    if (g.type == GateType::kMux) return false;
    if (g.fanins.size() > 2) return false;
  }
  return true;
}

}  // namespace rebert::nl
