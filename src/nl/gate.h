// Gate model: the cell library of the reproduction.
//
// The paper operates on generic gate-level netlists (ITC'99 after synthesis)
// whose cells are the usual primitive Boolean functions plus D flip-flops.
// We model exactly that: combinational primitives of arbitrary arity >= 1
// (decomposable to 2-input form, §II-A-1), a 2:1 mux (common synthesis
// output, lowered before tokenization), and DFFs as the sequential elements
// whose D pins define the "bits" being grouped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rebert::nl {

enum class GateType : std::uint8_t {
  kInput,   // primary input (no fanin)
  kConst0,  // constant 0 (no fanin)
  kConst1,  // constant 1 (no fanin)
  kBuf,     // 1 fanin
  kNot,     // 1 fanin
  kAnd,     // >= 2 fanins
  kOr,      // >= 2 fanins
  kNand,    // >= 2 fanins
  kNor,     // >= 2 fanins
  kXor,     // >= 2 fanins (odd parity)
  kXnor,    // >= 2 fanins (even parity)
  kMux,     // exactly 3 fanins: MUX(sel, a, b) = sel ? b : a
  kDff,     // sequential; fanin[0] = D, output = Q
};

inline constexpr int kNumGateTypes = 13;

/// Canonical upper-case mnemonic ("NAND", "DFF", ...), also used as the
/// token text in the ReBERT vocabulary and the cell name in .bench files.
const char* gate_type_name(GateType type);

/// Inverse of gate_type_name (case-insensitive). Throws util::CheckError on
/// unknown names.
GateType gate_type_from_name(const std::string& name);

/// True for INPUT / CONST0 / CONST1 (gates with no fanin).
bool is_source(GateType type);

/// True for DFF.
bool is_sequential(GateType type);

/// True for gates that compute a Boolean function of their fanins.
bool is_combinational(GateType type);

/// True for AND/OR/NAND/NOR/XOR/XNOR: arity may exceed 2 and the gate can be
/// decomposed into a 2-input tree.
bool is_decomposable(GateType type);

/// [min, max] allowed fanin count; max = -1 means unbounded.
struct ArityRange {
  int min;
  int max;
};
ArityRange gate_arity(GateType type);

/// Evaluate a combinational gate over its fanin values. XOR/XNOR are odd /
/// even parity for arity > 2. Requires a legal arity.
bool eval_gate(GateType type, const std::vector<bool>& inputs);

}  // namespace rebert::nl
