// Bits and word-level ground truth.
//
// §II-A: "Bits are identified as signals feeding into sequential components"
// — i.e. the D pin of each flip-flop. A *word* is a set of bits that the
// original RTL grouped (a register, counter, accumulator, ...). The
// benchmark generator emits the ground-truth WordMap; reverse-engineering
// methods output a grouping over the same bit universe, and metrics::ARI
// compares the two labelings.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "nl/netlist.h"

namespace rebert::nl {

/// One bit = one flip-flop; the cone root is the D-input net.
struct Bit {
  GateId dff = kNoGate;    // the sequential element
  GateId d_net = kNoGate;  // signal feeding it (cone root)
  std::string name;        // the DFF's name (stable across corruption)
};

/// All bits of a netlist in a deterministic order (DFF creation order).
std::vector<Bit> extract_bits(const Netlist& netlist);

/// Ground-truth (or predicted) word grouping over bit names.
class WordMap {
 public:
  /// Assign `bit_names` to a word. Word names must be unique; each bit can
  /// belong to at most one word.
  void add_word(const std::string& word_name,
                const std::vector<std::string>& bit_names);

  int num_words() const { return static_cast<int>(words_.size()); }
  const std::vector<std::pair<std::string, std::vector<std::string>>>& words()
      const {
    return words_;
  }

  /// Word label for a bit; bits not covered by any word get singleton labels
  /// appended after the word labels (the ITC'99 ground truth also leaves
  /// loose status flags as 1-bit words).
  /// Returns labels aligned with `bits` ordering.
  std::vector<int> labels_for(const std::vector<Bit>& bits) const;

  /// Build a WordMap from labels (inverse of labels_for, for predictions).
  static WordMap from_labels(const std::vector<Bit>& bits,
                             const std::vector<int>& labels);

  /// Histogram of word sizes, e.g. {1: 3, 8: 4} — three 1-bit and four
  /// 8-bit words.
  std::unordered_map<int, int> size_histogram() const;

  /// Text serialization: one word per line, "name: bit bit bit".
  /// Lines starting with '#' are comments.
  std::string to_text() const;
  static WordMap from_text(const std::string& text);
  void save(const std::string& path) const;
  static WordMap load(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::vector<std::string>>> words_;
  std::unordered_map<std::string, int> word_of_bit_;
};

}  // namespace rebert::nl
