#include "nl/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "nl/parser.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/string_utils.h"

namespace rebert::nl {

namespace {

struct CodeInfo {
  const char* id;
  const char* name;
  LintSeverity severity;
};

constexpr CodeInfo kCodeInfo[kNumLintCodes] = {
    {"NL001", "combinational-cycle", LintSeverity::kError},
    {"NL002", "undriven-net", LintSeverity::kError},
    {"NL003", "multi-driven-net", LintSeverity::kError},
    {"NL004", "dangling-output", LintSeverity::kWarning},
    {"NL005", "unreachable-gate", LintSeverity::kWarning},
    {"NL006", "dff-no-cone", LintSeverity::kWarning},
    {"NL007", "word-bit-mismatch", LintSeverity::kError},
    {"NL008", "floating-input", LintSeverity::kWarning},
    {"NL009", "parse-failure", LintSeverity::kError},
};

const CodeInfo& info(LintCode code) {
  const int index = static_cast<int>(code);
  REBERT_CHECK_MSG(index >= 0 && index < kNumLintCodes,
                   "unknown lint code " << index);
  return kCodeInfo[index];
}

}  // namespace

const char* lint_severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError: return "error";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kInfo: return "info";
  }
  return "unknown";
}

const char* lint_code_id(LintCode code) { return info(code).id; }
const char* lint_code_name(LintCode code) { return info(code).name; }
LintSeverity lint_code_severity(LintCode code) { return info(code).severity; }

std::string LintDiagnostic::to_string() const {
  std::ostringstream os;
  os << lint_severity_name(severity) << " " << lint_code_id(code) << " ["
     << lint_code_name(code) << "]";
  if (line > 0) os << " line " << line;
  if (!net.empty()) os << " net '" << net << "'";
  if (gate != kNoGate) os << " (gate " << gate << ")";
  os << ": " << message;
  return os.str();
}

int LintReport::num_errors() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const LintDiagnostic& d) {
                      return d.severity == LintSeverity::kError;
                    }));
}

int LintReport::num_warnings() const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const LintDiagnostic& d) {
                      return d.severity == LintSeverity::kWarning;
                    }));
}

int LintReport::count(LintCode code) const {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [code](const LintDiagnostic& d) {
                      return d.code == code;
                    }));
}

void LintReport::add(LintDiagnostic diagnostic) {
  diagnostic.severity = lint_code_severity(diagnostic.code);
  diagnostics.push_back(std::move(diagnostic));
}

void LintReport::merge(const LintReport& other) {
  diagnostics.insert(diagnostics.end(), other.diagnostics.begin(),
                     other.diagnostics.end());
}

std::string LintReport::to_text() const {
  std::ostringstream os;
  if (!netlist_name.empty()) os << "== lint: " << netlist_name << " ==\n";
  for (const LintDiagnostic& d : diagnostics) os << d.to_string() << "\n";
  os << num_errors() << " error(s), " << num_warnings() << " warning(s)\n";
  return os.str();
}

std::string LintReport::to_csv() const {
  std::ostringstream os;
  os << "netlist,severity,code,name,gate,net,line,message\n";
  for (const LintDiagnostic& d : diagnostics) {
    os << util::CsvWriter::escape(netlist_name) << ","
       << lint_severity_name(d.severity) << "," << lint_code_id(d.code) << ","
       << lint_code_name(d.code) << ",";
    if (d.gate != kNoGate) os << d.gate;
    os << "," << util::CsvWriter::escape(d.net) << "," << d.line << ","
       << util::CsvWriter::escape(d.message) << "\n";
  }
  return os.str();
}

namespace {

/// Bounded emission per diagnostic class.
class Emitter {
 public:
  Emitter(LintReport* report, int max_per_code)
      : report_(report), max_per_code_(max_per_code) {}

  void emit(LintCode code, GateId gate, std::string net, std::string message,
            int line = 0) {
    int& emitted = emitted_[static_cast<int>(code)];
    if (max_per_code_ > 0 && emitted >= max_per_code_) {
      ++suppressed_;
      return;
    }
    ++emitted;
    LintDiagnostic d;
    d.code = code;
    d.gate = gate;
    d.net = std::move(net);
    d.line = line;
    d.message = std::move(message);
    report_->add(std::move(d));
  }

  int suppressed() const { return suppressed_; }

 private:
  LintReport* report_;
  int max_per_code_;
  int emitted_[kNumLintCodes] = {};
  int suppressed_ = 0;
};

void check_combinational_cycles(const Netlist& netlist, Emitter* emit) {
  // Kahn's algorithm over the combinational subgraph; unlike
  // Netlist::topological_order() this pass reports instead of throwing.
  const int n = netlist.num_gates();
  std::vector<int> pending(n, 0);
  std::vector<std::vector<GateId>> fanouts(n);
  std::vector<GateId> ready;
  int num_comb = 0;
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = netlist.gate(id);
    if (!is_combinational(g.type)) continue;
    ++num_comb;
    int deps = 0;
    for (GateId f : g.fanins) {
      if (is_combinational(netlist.gate(f).type)) {
        ++deps;
        fanouts[f].push_back(id);
      }
    }
    pending[id] = deps;
    if (deps == 0) ready.push_back(id);
  }
  int drained = 0;
  for (std::size_t head = 0; head < ready.size(); ++head) {
    ++drained;
    for (GateId out : fanouts[ready[head]])
      if (--pending[out] == 0) ready.push_back(out);
  }
  if (drained == num_comb) return;

  // Every undrained combinational gate lies on or downstream of a cycle.
  std::vector<GateId> residual;
  for (GateId id = 0; id < n; ++id)
    if (is_combinational(netlist.gate(id).type) && pending[id] > 0)
      residual.push_back(id);
  std::ostringstream os;
  os << "combinational cycle involves " << residual.size() << " gate(s):";
  const std::size_t shown = std::min<std::size_t>(residual.size(), 8);
  for (std::size_t i = 0; i < shown; ++i)
    os << " " << netlist.gate(residual[i]).name;
  if (residual.size() > shown) os << " (+" << residual.size() - shown
                                 << " more)";
  emit->emit(LintCode::kCombinationalCycle, residual.front(),
             netlist.gate(residual.front()).name, os.str());
}

void check_dangling_and_unreachable(const Netlist& netlist,
                                    const LintOptions& options,
                                    Emitter* emit) {
  const int n = netlist.num_gates();
  const std::vector<int> fanout = netlist.fanout_counts();

  std::vector<bool> dangling(n, false);
  if (options.check_dangling) {
    for (GateId id = 0; id < n; ++id) {
      const Gate& g = netlist.gate(id);
      if (g.type == GateType::kInput) continue;  // NL008's job
      // Flip-flops are observable endpoints in their own right (each one is
      // a "bit" in the pipeline's universe), not dangling logic.
      if (is_sequential(g.type)) continue;
      if (fanout[id] > 0 || netlist.is_output(id)) continue;
      dangling[id] = true;
      emit->emit(LintCode::kDanglingOutput, id, g.name,
                 std::string(gate_type_name(g.type)) +
                     " output drives no gate and is not a primary output");
    }
  }

  if (!options.check_unreachable) return;
  // Reverse reachability from the observable roots: primary outputs and
  // flip-flops (whose D cones are the pipeline's unit of analysis).
  std::vector<bool> reachable(n, false);
  std::vector<GateId> stack;
  auto mark = [&](GateId id) {
    if (!reachable[id]) {
      reachable[id] = true;
      stack.push_back(id);
    }
  };
  for (GateId id : netlist.outputs()) mark(id);
  for (GateId id : netlist.dffs()) mark(id);
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    for (GateId f : netlist.gate(id).fanins) mark(f);
  }
  for (GateId id = 0; id < n; ++id) {
    const Gate& g = netlist.gate(id);
    if (reachable[id] || g.type == GateType::kInput || dangling[id]) continue;
    emit->emit(LintCode::kUnreachableGate, id, g.name,
               std::string(gate_type_name(g.type)) +
                   " feeds only dead logic; no primary output or flip-flop "
                   "depends on it");
  }
}

void check_dff_cones(const Netlist& netlist, Emitter* emit) {
  for (GateId dff : netlist.dffs()) {
    const GateId d = netlist.gate(dff).fanins[0];
    // Backward closure of the D pin across combinational gates. A healthy
    // cone bottoms out in at least one primary input or one flip-flop other
    // than the FF itself; a cone made only of constants (or a bare
    // self-loop) is degenerate state the corruption engine can produce.
    std::vector<GateId> stack{d};
    std::unordered_set<GateId> seen{d};
    bool live_leaf = false;
    while (!stack.empty() && !live_leaf) {
      const GateId id = stack.back();
      stack.pop_back();
      const Gate& g = netlist.gate(id);
      if (g.type == GateType::kInput) live_leaf = true;
      if (g.type == GateType::kDff && id != dff) live_leaf = true;
      if (!is_combinational(g.type)) continue;
      for (GateId f : g.fanins)
        if (seen.insert(f).second) stack.push_back(f);
    }
    if (!live_leaf)
      emit->emit(LintCode::kDffNoCone, dff, netlist.gate(dff).name,
                 "flip-flop fan-in cone contains no primary input and no "
                 "other flip-flop (constant or self-loop state)");
  }
}

void check_word_labels(const Netlist& netlist, const WordMap& words,
                       Emitter* emit) {
  for (const auto& [word, bits] : words.words()) {
    for (const std::string& bit : bits) {
      const auto id = netlist.find(bit);
      if (!id) {
        emit->emit(LintCode::kWordBitMismatch, kNoGate, word,
                   "word references bit '" + bit +
                       "' which does not exist in the netlist");
      } else if (netlist.gate(*id).type != GateType::kDff) {
        emit->emit(LintCode::kWordBitMismatch, *id, word,
                   "word references net '" + bit +
                       "' which is not a flip-flop (bits are DFF outputs)");
      }
    }
  }
}

void check_floating_inputs(const Netlist& netlist,
                           const std::vector<int>& fanout, Emitter* emit) {
  for (GateId id : netlist.inputs()) {
    if (fanout[id] == 0 && !netlist.is_output(id))
      emit->emit(LintCode::kFloatingInput, id, netlist.gate(id).name,
                 "primary input drives nothing");
  }
}

}  // namespace

LintReport lint_netlist(const Netlist& netlist, const LintOptions& options) {
  LintReport report;
  report.netlist_name = netlist.name();
  Emitter emit(&report, options.max_per_code);

  check_combinational_cycles(netlist, &emit);
  check_dangling_and_unreachable(netlist, options, &emit);
  if (options.check_dff_cones) check_dff_cones(netlist, &emit);
  if (options.check_floating_inputs)
    check_floating_inputs(netlist, netlist.fanout_counts(), &emit);
  if (options.words) check_word_labels(netlist, *options.words, &emit);
  return report;
}

namespace {

// Minimal tolerant scan of one "NAME(arg, ...)" call; returns false when the
// text is not even call-shaped.
bool scan_call(const std::string& text, std::string* callee,
               std::vector<std::string>* args) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open)
    return false;
  *callee = util::to_upper(util::trim(text.substr(0, open)));
  if (callee->empty()) return false;
  args->clear();
  const std::string inner =
      util::trim(text.substr(open + 1, close - open - 1));
  if (inner.empty()) return true;
  for (const std::string& piece : util::split(inner, ',')) {
    const std::string arg = util::trim(piece);
    if (arg.empty()) return false;
    args->push_back(arg);
  }
  return true;
}

}  // namespace

LintReport lint_bench_source(const std::string& text,
                             const std::string& netlist_name) {
  LintReport report;
  report.netlist_name = netlist_name;
  Emitter emit(&report, /*max_per_code=*/1000);

  struct Ref {
    std::string name;
    int line;
  };
  std::unordered_map<std::string, int> defined;  // net -> first defining line
  std::vector<Ref> referenced;

  auto define = [&](const std::string& net, int line) {
    auto [it, inserted] = defined.emplace(net, line);
    if (!inserted)
      emit.emit(LintCode::kMultiDrivenNet, kNoGate, net,
                "net is driven more than once (first driver at line " +
                    std::to_string(it->second) + ")",
                line);
  };

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string stmt = util::trim(line);
    if (stmt.empty()) continue;

    std::string callee;
    std::vector<std::string> args;
    const std::size_t eq = stmt.find('=');
    if (eq == std::string::npos) {
      if (!scan_call(stmt, &callee, &args) || args.size() != 1) {
        emit.emit(LintCode::kParseFailure, kNoGate, "",
                  "expected INPUT(net) or OUTPUT(net), got '" + stmt + "'",
                  line_no);
        continue;
      }
      if (callee == "INPUT") {
        define(args[0], line_no);
      } else if (callee == "OUTPUT") {
        referenced.push_back(Ref{args[0], line_no});
      } else {
        emit.emit(LintCode::kParseFailure, kNoGate, "",
                  "unknown directive '" + callee + "'", line_no);
      }
      continue;
    }

    const std::string lhs = util::trim(stmt.substr(0, eq));
    if (lhs.empty() || !scan_call(util::trim(stmt.substr(eq + 1)), &callee,
                                  &args)) {
      emit.emit(LintCode::kParseFailure, kNoGate, lhs,
                "malformed gate statement '" + stmt + "'", line_no);
      continue;
    }
    try {
      const GateType type = gate_type_from_name(callee);
      if (type == GateType::kInput) {
        emit.emit(LintCode::kParseFailure, kNoGate, lhs,
                  "INPUT cannot appear on the right-hand side", line_no);
        continue;
      }
    } catch (const util::CheckError&) {
      emit.emit(LintCode::kParseFailure, kNoGate, lhs,
                "unknown gate type '" + callee + "'", line_no);
      continue;
    }
    define(lhs, line_no);
    for (const std::string& arg : args) referenced.push_back(Ref{arg, line_no});
  }

  std::unordered_set<std::string> reported_undriven;
  for (const Ref& ref : referenced) {
    if (defined.count(ref.name)) continue;
    if (!reported_undriven.insert(ref.name).second) continue;
    emit.emit(LintCode::kUndrivenNet, kNoGate, ref.name,
              "net is referenced but never driven", ref.line);
  }
  return report;
}

LintReport lint_bench_file(const std::string& path,
                           const LintOptions& options) {
  std::ifstream in(path);
  REBERT_CHECK_MSG(in.good(), "cannot open bench file " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);

  LintReport report = lint_bench_source(text, name);
  if (!report.clean()) return report;

  ParseOptions parse_options;
  parse_options.lint = false;  // graph lint runs below with caller options
  try {
    const Netlist netlist = parse_bench_string(text, name, parse_options);
    report.merge(lint_netlist(netlist, options));
  } catch (const std::exception& e) {
    // Defects the tolerant source scan cannot model (bad arity, builder
    // rejections) still surface as a single parse-failure diagnostic.
    // Cycles abort netlist construction itself (validate() refuses to
    // build an unorderable graph), so map them to their own code here.
    const std::string what = e.what();
    LintDiagnostic d;
    d.code = what.find("combinational cycle") != std::string::npos
                 ? LintCode::kCombinationalCycle
                 : LintCode::kParseFailure;
    d.message = what.find("combinational cycle") != std::string::npos
                    ? "combinational cycle detected (netlist construction "
                      "aborted before gates could be enumerated)"
                    : what;
    report.add(std::move(d));
  }
  return report;
}

}  // namespace rebert::nl
