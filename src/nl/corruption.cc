#include "nl/corruption.h"

#include "util/check.h"

namespace rebert::nl {

namespace {

// Applies template `t` to gate `id` of `nl` (type/fanins captured before the
// call). Helper gates are appended; the gate itself is rewired in place so
// all fanout keeps pointing at the original net. Returns the number of
// helper gates added.
int apply_template(Netlist* nl, GateId id, GateType type,
                   const std::vector<GateId>& fanins, int t) {
  auto& n = *nl;
  switch (type) {
    case GateType::kAnd: {
      if (fanins.size() > 2) {  // NOT(NAND(...))
        const GateId h = n.add_gate(GateType::kNand, fanins);
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      const GateId a = fanins[0], b = fanins[1];
      if (t == 0) {  // NOT(NAND(a,b))
        const GateId h = n.add_gate(GateType::kNand, {a, b});
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      // NOR(NOT a, NOT b)
      const GateId na = n.add_gate(GateType::kNot, {a});
      const GateId nb = n.add_gate(GateType::kNot, {b});
      n.replace_gate(id, GateType::kNor, {na, nb});
      return 2;
    }
    case GateType::kOr: {
      if (fanins.size() > 2) {  // NOT(NOR(...))
        const GateId h = n.add_gate(GateType::kNor, fanins);
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      const GateId a = fanins[0], b = fanins[1];
      if (t == 0) {  // NOT(NOR(a,b))
        const GateId h = n.add_gate(GateType::kNor, {a, b});
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      // NAND(NOT a, NOT b)
      const GateId na = n.add_gate(GateType::kNot, {a});
      const GateId nb = n.add_gate(GateType::kNot, {b});
      n.replace_gate(id, GateType::kNand, {na, nb});
      return 2;
    }
    case GateType::kNand: {
      if (fanins.size() > 2) {  // NOT(AND(...))
        const GateId h = n.add_gate(GateType::kAnd, fanins);
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      const GateId a = fanins[0], b = fanins[1];
      if (t == 0) {  // OR(NOT a, NOT b) — the paper's example
        const GateId na = n.add_gate(GateType::kNot, {a});
        const GateId nb = n.add_gate(GateType::kNot, {b});
        n.replace_gate(id, GateType::kOr, {na, nb});
        return 2;
      }
      // NOT(AND(a,b))
      const GateId h = n.add_gate(GateType::kAnd, {a, b});
      n.replace_gate(id, GateType::kNot, {h});
      return 1;
    }
    case GateType::kNor: {
      if (fanins.size() > 2) {  // NOT(OR(...))
        const GateId h = n.add_gate(GateType::kOr, fanins);
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      const GateId a = fanins[0], b = fanins[1];
      if (t == 0) {  // AND(NOT a, NOT b)
        const GateId na = n.add_gate(GateType::kNot, {a});
        const GateId nb = n.add_gate(GateType::kNot, {b});
        n.replace_gate(id, GateType::kAnd, {na, nb});
        return 2;
      }
      // NOT(OR(a,b))
      const GateId h = n.add_gate(GateType::kOr, {a, b});
      n.replace_gate(id, GateType::kNot, {h});
      return 1;
    }
    case GateType::kXor: {
      if (fanins.size() > 2) {  // NOT(XNOR(...))
        const GateId h = n.add_gate(GateType::kXnor, fanins);
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      const GateId a = fanins[0], b = fanins[1];
      if (t == 0) {  // NOT(XNOR(a,b))
        const GateId h = n.add_gate(GateType::kXnor, {a, b});
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      // OR(AND(a, NOT b), AND(NOT a, b))
      const GateId na = n.add_gate(GateType::kNot, {a});
      const GateId nb = n.add_gate(GateType::kNot, {b});
      const GateId lo = n.add_gate(GateType::kAnd, {a, nb});
      const GateId hi = n.add_gate(GateType::kAnd, {na, b});
      n.replace_gate(id, GateType::kOr, {lo, hi});
      return 4;
    }
    case GateType::kXnor: {
      if (fanins.size() > 2) {  // NOT(XOR(...))
        const GateId h = n.add_gate(GateType::kXor, fanins);
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      const GateId a = fanins[0], b = fanins[1];
      if (t == 0) {  // NOT(XOR(a,b))
        const GateId h = n.add_gate(GateType::kXor, {a, b});
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      // OR(AND(a,b), NOR(a,b))
      const GateId both = n.add_gate(GateType::kAnd, {a, b});
      const GateId neither = n.add_gate(GateType::kNor, {a, b});
      n.replace_gate(id, GateType::kOr, {both, neither});
      return 2;
    }
    case GateType::kNot: {
      const GateId a = fanins[0];
      if (t == 0) {  // NAND(a,a)
        n.replace_gate(id, GateType::kNand, {a, a});
        return 0;
      }
      // NOR(a,a)
      n.replace_gate(id, GateType::kNor, {a, a});
      return 0;
    }
    case GateType::kBuf: {
      const GateId a = fanins[0];
      if (t == 0) {  // NOT(NOT(a))
        const GateId h = n.add_gate(GateType::kNot, {a});
        n.replace_gate(id, GateType::kNot, {h});
        return 1;
      }
      if (t == 1) {  // AND(a,a)
        n.replace_gate(id, GateType::kAnd, {a, a});
        return 0;
      }
      // OR(a,a)
      n.replace_gate(id, GateType::kOr, {a, a});
      return 0;
    }
    default:
      REBERT_CHECK_MSG(false, "no corruption template for "
                                  << gate_type_name(type));
  }
}

}  // namespace

int num_templates(GateType type, int arity) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return arity > 2 ? 1 : 2;
    case GateType::kNot:
      return 2;
    case GateType::kBuf:
      return 3;
    default:
      return 0;
  }
}

Netlist corrupt_netlist(const Netlist& input, const CorruptionOptions& options,
                        CorruptionReport* report) {
  REBERT_CHECK_MSG(options.r_index >= 0.0 && options.r_index <= 1.0,
                   "R-Index must be in [0,1], got " << options.r_index);
  // Copy via serialization-free route: rebuild through decompose-style remap
  // is unnecessary — Netlist is a value type, copy it directly.
  Netlist out = input;
  util::Rng rng(options.seed);
  CorruptionReport local;

  const GateId original_count = input.num_gates();
  const int before = out.num_gates();
  for (GateId id = 0; id < original_count; ++id) {
    const Gate g = out.gate(id);  // copy: replace_gate mutates storage
    const int templates =
        num_templates(g.type, static_cast<int>(g.fanins.size()));
    if (templates == 0) continue;
    ++local.eligible_gates;
    if (!rng.bernoulli(options.r_index)) continue;
    const int t = options.deterministic_templates
                      ? 0
                      : static_cast<int>(rng.uniform_u64(
                            static_cast<std::uint64_t>(templates)));
    apply_template(&out, id, g.type, g.fanins, t);
    ++local.replaced_gates;
  }
  local.added_gates = out.num_gates() - before;

  out.validate();
  if (report) *report = local;
  return out;
}

}  // namespace rebert::nl
