// Structural Verilog reader & writer (gate-primitive subset).
//
// The ITC'99 benchmarks circulate as synthesized structural Verilog; this
// module accepts the subset such netlists use:
//
//   module top (a, b, y);
//     input a, b;
//     input [3:0] bus;          // vectors expand to bus[3] .. bus[0]
//     output y;
//     wire w1;
//     nand g1 (w1, a, b);       // primitives: output first, then inputs
//     not (y, w1);              // instance name optional
//     dff r0 (q, w1);           // sequential pseudo-primitive (Q, D)
//     assign y2 = w1;           // simple alias (materialized as BUF)
//     assign k = 1'b0;          // constant tie
//   endmodule
//
// Supported primitives: and/or/nand/nor/xor/xnor (n-ary), not/buf (unary),
// mux (sel, a, b), dff (Q, D). Comments (// and /* */) are stripped.
// Multiple modules, hierarchies, always blocks, and expressions are out of
// scope — flatten first, as the paper's flow assumes.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "nl/netlist.h"

namespace rebert::nl {

class VerilogError : public std::runtime_error {
 public:
  explicit VerilogError(const std::string& what) : std::runtime_error(what) {}
};

Netlist parse_verilog(std::istream& in);
Netlist parse_verilog_string(const std::string& text);
Netlist parse_verilog_file(const std::string& path);

/// Emits the module in the accepted subset; parse(write(n)) is equivalent
/// to n by simulation.
void write_verilog(const Netlist& netlist, std::ostream& out);
std::string write_verilog_string(const Netlist& netlist);
void write_verilog_file(const Netlist& netlist, const std::string& path);

}  // namespace rebert::nl
