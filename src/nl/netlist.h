// Gate-level netlist graph.
//
// Representation: every gate drives exactly one net, so a net is identified
// by its driving gate's id (the convention of structural formats like
// ISCAS-89 .bench, which the parser reads/writes). Fanout is implicit via
// fanin references; fanout lists can be computed on demand.
//
// Invariants maintained by the builder API:
//   * every fanin id refers to an existing gate,
//   * arity is legal for the gate type,
//   * names are unique and non-empty,
//   * the combinational part is acyclic (checked by topological_order()).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "nl/gate.h"

namespace rebert::nl {

/// Index of a gate (== the net it drives) inside a Netlist.
using GateId = std::int32_t;
inline constexpr GateId kNoGate = -1;

struct Gate {
  GateType type = GateType::kInput;
  std::vector<GateId> fanins;
  std::string name;  // unique net/gate name
};

struct NetlistStats {
  int num_inputs = 0;
  int num_outputs = 0;
  int num_dffs = 0;
  int num_comb_gates = 0;  // combinational gates only (paper's "#gates")
  int max_fanin = 0;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- construction -------------------------------------------------------

  /// Add a primary input. Name must be unique.
  GateId add_input(const std::string& name);

  GateId add_const(bool value, const std::string& name);

  /// Add a combinational gate. Empty name -> auto-generated unique name.
  GateId add_gate(GateType type, std::vector<GateId> fanins,
                  const std::string& name = "");

  /// Add a D flip-flop with the given D fanin.
  GateId add_dff(GateId d, const std::string& name = "");

  /// Mark a net as a primary output (idempotent).
  void mark_output(GateId id);

  /// Re-type / re-wire an existing gate in place, keeping its name and all
  /// fanout references. Used by the corruption engine (template roots keep
  /// the original net). Sequential<->combinational changes are rejected.
  void replace_gate(GateId id, GateType type, std::vector<GateId> fanins);

  // ---- access --------------------------------------------------------------

  int num_gates() const { return static_cast<int>(gates_.size()); }
  const Gate& gate(GateId id) const;
  bool is_valid_id(GateId id) const {
    return id >= 0 && id < num_gates();
  }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }
  const std::vector<GateId>& dffs() const { return dffs_; }

  bool is_output(GateId id) const;

  /// Lookup by unique name.
  std::optional<GateId> find(const std::string& name) const;

  /// Per-gate fanout count (computed on demand, O(edges)).
  std::vector<int> fanout_counts() const;

  /// Topological order of the combinational gates (sources and DFF outputs
  /// are cut points / leaves and excluded). Throws util::CheckError if a
  /// combinational cycle exists.
  std::vector<GateId> topological_order() const;

  /// Number of combinational gates on the longest path driving `id`
  /// (0 for sources / DFF outputs).
  std::vector<int> logic_depths() const;

  NetlistStats stats() const;

  /// Structural sanity check: fanin ids valid, arities legal, names unique,
  /// DFD fanins present, no combinational cycle. Throws on violation.
  void validate() const;

 private:
  GateId add_gate_impl(GateType type, std::vector<GateId> fanins,
                       std::string name);
  std::string fresh_name(const char* prefix);

  std::string name_ = "netlist";
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::vector<bool> is_output_flag_;
  std::unordered_map<std::string, GateId> by_name_;
  std::uint64_t auto_name_counter_ = 0;
};

}  // namespace rebert::nl
