#include "nl/cone.h"

#include <algorithm>

#include "util/check.h"

namespace rebert::nl {

int ConeTree::num_leaves() const {
  int n = 0;
  for (const ConeNode& node : nodes)
    if (node.is_leaf) ++n;
  return n;
}

std::vector<int> ConeTree::preorder() const {
  std::vector<int> order;
  order.reserve(nodes.size());
  std::vector<int> stack;
  if (!nodes.empty()) stack.push_back(0);
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    order.push_back(idx);
    const ConeNode& node = nodes[idx];
    // Push children right-to-left so the left child is visited first.
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it)
      stack.push_back(*it);
  }
  return order;
}

namespace {

// Recursive expansion. `levels_left` counts remaining combinational levels
// including the current gate.
int expand(const Netlist& netlist, GateId net, int levels_left,
           ConeTree* tree, int* max_level_used, int level) {
  const Gate& g = netlist.gate(net);
  const int idx = static_cast<int>(tree->nodes.size());
  tree->nodes.push_back(ConeNode{});
  ConeNode& node = tree->nodes.back();
  node.type = g.type;
  node.name = g.name;

  const bool cut = !is_combinational(g.type) || levels_left <= 0;
  if (cut) {
    node.is_leaf = true;
    return idx;
  }
  *max_level_used = std::max(*max_level_used, level);
  // Copy fanins: the recursive calls grow tree->nodes and invalidate `node`.
  const std::vector<GateId> fanins = g.fanins;
  std::vector<int> children;
  children.reserve(fanins.size());
  for (GateId f : fanins)
    children.push_back(
        expand(netlist, f, levels_left - 1, tree, max_level_used, level + 1));
  tree->nodes[idx].children = std::move(children);
  return idx;
}

void sexpr_rec(const ConeTree& tree, int idx, bool generalize_leaves,
               std::string* out) {
  const ConeNode& node = tree.nodes[idx];
  if (node.is_leaf) {
    *out += generalize_leaves ? std::string("X") : node.name;
    return;
  }
  *out += '(';
  *out += gate_type_name(node.type);
  for (int child : node.children) {
    *out += ' ';
    sexpr_rec(tree, child, generalize_leaves, out);
  }
  *out += ')';
}

}  // namespace

ConeTree extract_cone(const Netlist& netlist, GateId root_net,
                      int max_depth) {
  REBERT_CHECK_MSG(max_depth >= 1, "cone depth must be >= 1");
  REBERT_CHECK(netlist.is_valid_id(root_net));
  ConeTree tree;
  int max_level_used = 0;
  expand(netlist, root_net, max_depth, &tree, &max_level_used, 1);
  tree.depth = max_level_used;
  return tree;
}

std::string cone_to_sexpr(const ConeTree& tree, bool generalize_leaves) {
  REBERT_CHECK(!tree.nodes.empty());
  std::string out;
  sexpr_rec(tree, 0, generalize_leaves, &out);
  return out;
}

}  // namespace rebert::nl
