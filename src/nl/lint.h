// Netlist linter: typed diagnostics over gate-level structure.
//
// Everything downstream of the parser — cone extraction, tokenization, word
// grouping, the corruption experiments — silently assumes a well-formed
// graph. The builder API in Netlist rejects the hard violations (bad fanin
// ids, illegal arity, duplicate names, combinational cycles) by throwing,
// but many *soft* defects parse and validate fine and then quietly degrade
// results: gates whose output drives nothing, logic unreachable from any
// observable point, flip-flops whose fan-in cone is degenerate, word labels
// naming bits that do not exist. The corruption engine (R-Index gate
// replacement) makes such near-degenerate structure easy to produce, so the
// linter reports them all in one pass instead of failing on the first.
//
// Two analysis levels:
//   * lint_netlist()      — graph-level checks over a parsed Netlist (and
//                           optionally its WordMap ground truth).
//   * lint_bench_source() — text-level checks over raw .bench statements
//                           that the parser would reject outright
//                           (undriven nets, multi-driven nets, parse
//                           failures), reported with line numbers.
// lint_bench_file() composes both: source lint first, then graph lint when
// the file parses.
//
// Every diagnostic carries a stable code (NL001...), a severity, and a
// location (gate id and/or net name). Codes are append-only; reporters and
// CI greps may rely on them.
#pragma once

#include <string>
#include <vector>

#include "nl/netlist.h"
#include "nl/words.h"

namespace rebert::nl {

enum class LintSeverity : std::uint8_t { kError, kWarning, kInfo };

/// "error" / "warning" / "info".
const char* lint_severity_name(LintSeverity severity);

// Stable diagnostic classes. Values are append-only: the numeric id is part
// of the code string (NL001...) that external tooling may match on.
enum class LintCode : std::uint8_t {
  kCombinationalCycle = 0,  // NL001 (error): comb. subgraph has a cycle
  kUndrivenNet,             // NL002 (error): net referenced, never defined
  kMultiDrivenNet,          // NL003 (error): net defined more than once
  kDanglingOutput,          // NL004 (warning): gate output drives nothing
  kUnreachableGate,         // NL005 (warning): dead transitive logic
  kDffNoCone,               // NL006 (warning): FF cone has no PI/FF leaves
  kWordBitMismatch,         // NL007 (error): word label names unknown bit
  kFloatingInput,           // NL008 (warning): primary input unused
  kParseFailure,            // NL009 (error): .bench text does not parse
};

inline constexpr int kNumLintCodes = 9;

/// Stable code string, e.g. "NL004".
const char* lint_code_id(LintCode code);

/// Human-readable slug, e.g. "dangling-output".
const char* lint_code_name(LintCode code);

/// Default severity of the class (fixed; severities are part of the
/// contract, not configurable).
LintSeverity lint_code_severity(LintCode code);

struct LintDiagnostic {
  LintCode code = LintCode::kCombinationalCycle;
  LintSeverity severity = LintSeverity::kError;
  GateId gate = kNoGate;  // offending gate, when one exists
  std::string net;        // offending net / bit / word name, when known
  int line = 0;           // 1-based source line (source-level lint only)
  std::string message;    // human-readable detail

  /// One-line rendering: "error NL004 [dangling-output] net 'x': ...".
  std::string to_string() const;
};

struct LintReport {
  std::string netlist_name;
  std::vector<LintDiagnostic> diagnostics;

  int num_errors() const;
  int num_warnings() const;
  bool clean() const { return num_errors() == 0; }

  /// Count of diagnostics of one class.
  int count(LintCode code) const;
  bool has(LintCode code) const { return count(code) > 0; }

  void add(LintDiagnostic diagnostic);
  /// Append all diagnostics of `other` (used to compose source + graph
  /// passes).
  void merge(const LintReport& other);

  /// Text reporter: one diagnostic per line plus a summary trailer.
  std::string to_text() const;

  /// CSV reporter: header + one row per diagnostic
  /// (netlist,severity,code,name,gate,net,line,message).
  std::string to_csv() const;
};

struct LintOptions {
  bool check_dangling = true;
  bool check_unreachable = true;
  bool check_dff_cones = true;
  bool check_floating_inputs = true;
  /// When set, word labels are checked against the netlist's DFFs (NL007).
  const WordMap* words = nullptr;
  /// Cap on diagnostics per class, so a pathological netlist cannot emit
  /// millions of lines. 0 = unlimited.
  int max_per_code = 1000;
};

/// Graph-level lint. Never throws on netlist defects — that is the point —
/// only on internal errors.
LintReport lint_netlist(const Netlist& netlist, const LintOptions& options = {});

/// Text-level lint of .bench source: NL002 undriven nets, NL003 multi-driven
/// nets, NL009 parse failures. Reports every defect with its line number
/// where the parser would throw on the first.
LintReport lint_bench_source(const std::string& text,
                             const std::string& netlist_name = "");

/// Source lint, then (if the text parses) graph lint, merged.
LintReport lint_bench_file(const std::string& path,
                           const LintOptions& options = {});

}  // namespace rebert::nl
