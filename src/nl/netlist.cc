#include "nl/netlist.h"

#include <algorithm>

#include "util/check.h"

namespace rebert::nl {

GateId Netlist::add_input(const std::string& name) {
  REBERT_CHECK_MSG(!name.empty(), "primary inputs must be named");
  const GateId id = add_gate_impl(GateType::kInput, {}, name);
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_const(bool value, const std::string& name) {
  return add_gate_impl(value ? GateType::kConst1 : GateType::kConst0, {},
                       name.empty() ? fresh_name("const") : name);
}

GateId Netlist::add_gate(GateType type, std::vector<GateId> fanins,
                         const std::string& name) {
  REBERT_CHECK_MSG(is_combinational(type),
                   "add_gate expects a combinational type, got "
                       << gate_type_name(type));
  return add_gate_impl(type, std::move(fanins),
                       name.empty() ? fresh_name("n") : name);
}

GateId Netlist::add_dff(GateId d, const std::string& name) {
  return add_gate_impl(GateType::kDff, {d},
                       name.empty() ? fresh_name("ff") : name);
}

GateId Netlist::add_gate_impl(GateType type, std::vector<GateId> fanins,
                              std::string name) {
  const ArityRange ar = gate_arity(type);
  REBERT_CHECK_MSG(static_cast<int>(fanins.size()) >= ar.min &&
                       (ar.max < 0 ||
                        static_cast<int>(fanins.size()) <= ar.max),
                   "illegal arity " << fanins.size() << " for "
                                    << gate_type_name(type));
  const GateId self = static_cast<GateId>(gates_.size());
  for (GateId f : fanins) {
    // A DFF may feed back on itself (q = DFF(q)); no other self-reference
    // is legal.
    const bool self_loop_ok = (type == GateType::kDff && f == self);
    REBERT_CHECK_MSG(is_valid_id(f) || self_loop_ok,
                     "fanin id " << f << " out of range");
  }
  REBERT_CHECK_MSG(!by_name_.count(name), "duplicate gate name: " << name);

  const GateId id = self;
  gates_.push_back(Gate{type, std::move(fanins), name});
  is_output_flag_.push_back(false);
  by_name_.emplace(std::move(name), id);
  if (type == GateType::kDff) dffs_.push_back(id);
  return id;
}

void Netlist::mark_output(GateId id) {
  REBERT_CHECK(is_valid_id(id));
  if (!is_output_flag_[id]) {
    is_output_flag_[id] = true;
    outputs_.push_back(id);
  }
}

void Netlist::replace_gate(GateId id, GateType type,
                           std::vector<GateId> fanins) {
  REBERT_CHECK(is_valid_id(id));
  Gate& g = gates_[id];
  REBERT_CHECK_MSG(is_combinational(g.type) == is_combinational(type) &&
                       is_sequential(g.type) == is_sequential(type),
                   "replace_gate cannot change gate class");
  const ArityRange ar = gate_arity(type);
  REBERT_CHECK(static_cast<int>(fanins.size()) >= ar.min &&
               (ar.max < 0 || static_cast<int>(fanins.size()) <= ar.max));
  for (GateId f : fanins)
    REBERT_CHECK(is_valid_id(f) || (type == GateType::kDff && f == id));
  g.type = type;
  g.fanins = std::move(fanins);
}

const Gate& Netlist::gate(GateId id) const {
  REBERT_CHECK_MSG(is_valid_id(id), "gate id " << id << " out of range");
  return gates_[id];
}

bool Netlist::is_output(GateId id) const {
  REBERT_CHECK(is_valid_id(id));
  return is_output_flag_[id];
}

std::optional<GateId> Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<int> Netlist::fanout_counts() const {
  std::vector<int> counts(gates_.size(), 0);
  for (const Gate& g : gates_)
    for (GateId f : g.fanins) ++counts[f];
  return counts;
}

std::vector<GateId> Netlist::topological_order() const {
  // Kahn's algorithm over combinational gates only. DFF outputs, primary
  // inputs, and constants are cut points: they have no combinational fanin.
  std::vector<int> pending(gates_.size(), 0);
  std::vector<GateId> ready;
  int num_comb = 0;
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[id];
    if (!is_combinational(g.type)) continue;
    ++num_comb;
    int deps = 0;
    for (GateId f : g.fanins)
      if (is_combinational(gates_[f].type)) ++deps;
    pending[id] = deps;
    if (deps == 0) ready.push_back(id);
  }

  // Fanout adjacency restricted to combinational edges.
  std::vector<std::vector<GateId>> fanouts(gates_.size());
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[id];
    if (!is_combinational(g.type)) continue;
    for (GateId f : g.fanins)
      if (is_combinational(gates_[f].type)) fanouts[f].push_back(id);
  }

  std::vector<GateId> order;
  order.reserve(num_comb);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId id = ready[head];
    order.push_back(id);
    for (GateId out : fanouts[id])
      if (--pending[out] == 0) ready.push_back(out);
  }
  REBERT_CHECK_MSG(static_cast<int>(order.size()) == num_comb,
                   "combinational cycle detected in netlist '" << name_
                                                               << "'");
  return order;
}

std::vector<int> Netlist::logic_depths() const {
  std::vector<int> depth(gates_.size(), 0);
  for (GateId id : topological_order()) {
    int d = 0;
    for (GateId f : gates_[id].fanins)
      if (is_combinational(gates_[f].type)) d = std::max(d, depth[f]);
    depth[id] = d + 1;
  }
  return depth;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_inputs = static_cast<int>(inputs_.size());
  s.num_outputs = static_cast<int>(outputs_.size());
  s.num_dffs = static_cast<int>(dffs_.size());
  for (const Gate& g : gates_) {
    if (is_combinational(g.type)) ++s.num_comb_gates;
    s.max_fanin = std::max(s.max_fanin, static_cast<int>(g.fanins.size()));
  }
  return s;
}

void Netlist::validate() const {
  REBERT_CHECK(gates_.size() == is_output_flag_.size());
  REBERT_CHECK(by_name_.size() == gates_.size());
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[id];
    REBERT_CHECK_MSG(!g.name.empty(), "gate " << id << " has empty name");
    auto it = by_name_.find(g.name);
    REBERT_CHECK_MSG(it != by_name_.end() && it->second == id,
                     "name map inconsistent for " << g.name);
    const ArityRange ar = gate_arity(g.type);
    REBERT_CHECK(static_cast<int>(g.fanins.size()) >= ar.min &&
                 (ar.max < 0 || static_cast<int>(g.fanins.size()) <= ar.max));
    for (GateId f : g.fanins) REBERT_CHECK(is_valid_id(f));
  }
  topological_order();  // throws on combinational cycles
}

std::string Netlist::fresh_name(const char* prefix) {
  for (;;) {
    std::string candidate =
        std::string(prefix) + "_" + std::to_string(auto_name_counter_++);
    if (!by_name_.count(candidate)) return candidate;
  }
}

}  // namespace rebert::nl
