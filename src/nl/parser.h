// ISCAS-89 / ITC'99 style ".bench" structural netlist reader & writer.
//
// Grammar (one statement per line, '#' starts a comment):
//   INPUT(a)
//   OUTPUT(y)
//   y = NAND(a, b)
//   q = DFF(d)
//   k = CONST0()            (extension: constants)
// Statements may reference nets defined later; the parser resolves forward
// references in a second pass.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "nl/netlist.h"

namespace rebert::nl {

struct LintReport;  // nl/lint.h

/// Thrown on malformed input with a line-number message.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

struct ParseOptions {
  /// Run lint_netlist() on the parsed result and throw ParseError when it
  /// reports any error-severity diagnostic. On by default so defective
  /// netlists cannot silently enter the pipeline; set to false to accept
  /// them (the `rebert_cli lint` path does, to report instead of throw).
  bool lint = true;
  /// When non-null, receives the full lint report (including warnings,
  /// which never cause a throw). Filled even when `lint` is false.
  LintReport* lint_report = nullptr;
};

/// Parse a netlist from .bench text.
Netlist parse_bench(std::istream& in, const std::string& netlist_name = "",
                    const ParseOptions& options = {});
Netlist parse_bench_string(const std::string& text,
                           const std::string& netlist_name = "",
                           const ParseOptions& options = {});
Netlist parse_bench_file(const std::string& path,
                         const ParseOptions& options = {});

/// Serialize; parse_bench(write_bench(n)) reproduces the netlist up to gate
/// ordering.
void write_bench(const Netlist& netlist, std::ostream& out);
std::string write_bench_string(const Netlist& netlist);
void write_bench_file(const Netlist& netlist, const std::string& path);

}  // namespace rebert::nl
