// Cycle-accurate logic simulation and random-vector equivalence checking.
//
// The corruption engine (§III-A-1) must replace gates only with
// functionally equivalent templates; the simulator provides the oracle that
// our tests and the corruption engine's self-check use to verify that the
// corrupted netlist computes the same sequential function as the original.
#pragma once

#include <vector>

#include "nl/netlist.h"
#include "util/rng.h"

namespace rebert::nl {

/// Two-valued simulator. State = DFF outputs; inputs set per cycle.
class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  /// Reset all DFFs to 0.
  void reset();

  /// Set primary input values (aligned with netlist.inputs()).
  void set_inputs(const std::vector<bool>& values);

  /// Evaluate all combinational logic for the current inputs/state.
  void eval_combinational();

  /// Clock edge: latch D values into DFFs (call after eval_combinational).
  void step();

  /// Value of any net after eval_combinational().
  bool value(GateId id) const;

  /// Values of primary outputs / DFF D-inputs (the observable signals used
  /// for equivalence checking).
  std::vector<bool> output_values() const;
  std::vector<bool> next_state_values() const;
  std::vector<bool> state_values() const;

  const Netlist& netlist() const { return netlist_; }

 private:
  const Netlist& netlist_;
  std::vector<GateId> topo_;
  std::vector<char> values_;  // per-net value (char to avoid bitset refs)
  std::vector<char> state_;   // per-DFF latched value, aligned with dffs()
};

struct EquivalenceOptions {
  int num_sequences = 16;  // independent random runs from reset
  int cycles_per_sequence = 32;
  std::uint64_t seed = 1;
};

struct EquivalenceResult {
  bool equivalent = true;
  int failing_sequence = -1;
  int failing_cycle = -1;
  std::string mismatched_net;  // name of the first differing observable
};

/// Random simulation equivalence check. Netlists must have identical
/// primary-input names; observables are the primary outputs and the D pins
/// of DFFs *matched by name* (nets present in both). This matches the
/// corruption setting, where templates add fresh gates but keep original
/// nets alive.
EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& options = {});

}  // namespace rebert::nl
