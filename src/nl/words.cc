#include "nl/words.h"

#include <algorithm>
#include <fstream>

#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::nl {

std::vector<Bit> extract_bits(const Netlist& netlist) {
  std::vector<Bit> bits;
  bits.reserve(netlist.dffs().size());
  for (GateId id : netlist.dffs()) {
    const Gate& g = netlist.gate(id);
    bits.push_back(Bit{id, g.fanins[0], g.name});
  }
  return bits;
}

void WordMap::add_word(const std::string& word_name,
                       const std::vector<std::string>& bit_names) {
  REBERT_CHECK_MSG(!bit_names.empty(), "word '" << word_name << "' is empty");
  for (const auto& [name, bits] : words_)
    REBERT_CHECK_MSG(name != word_name,
                     "word '" << word_name << "' added twice");
  const int label = static_cast<int>(words_.size());
  for (const std::string& bit : bit_names) {
    REBERT_CHECK_MSG(!word_of_bit_.count(bit),
                     "bit '" << bit << "' assigned to two words");
    word_of_bit_.emplace(bit, label);
  }
  words_.emplace_back(word_name, bit_names);
}

std::vector<int> WordMap::labels_for(const std::vector<Bit>& bits) const {
  std::vector<int> labels(bits.size(), -1);
  int next_singleton = num_words();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto it = word_of_bit_.find(bits[i].name);
    labels[i] = (it != word_of_bit_.end()) ? it->second : next_singleton++;
  }
  return labels;
}

WordMap WordMap::from_labels(const std::vector<Bit>& bits,
                             const std::vector<int>& labels) {
  REBERT_CHECK(bits.size() == labels.size());
  std::unordered_map<int, std::vector<std::string>> groups;
  for (std::size_t i = 0; i < bits.size(); ++i)
    groups[labels[i]].push_back(bits[i].name);
  // Deterministic word order: sort group keys.
  std::vector<int> keys;
  keys.reserve(groups.size());
  for (const auto& [k, v] : groups) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  WordMap map;
  for (int k : keys)
    map.add_word("word_" + std::to_string(k), groups[k]);
  return map;
}

std::unordered_map<int, int> WordMap::size_histogram() const {
  std::unordered_map<int, int> histogram;
  for (const auto& [name, bits] : words_)
    ++histogram[static_cast<int>(bits.size())];
  return histogram;
}

std::string WordMap::to_text() const {
  std::string out = "# word-level ground truth: name: bit bit ...\n";
  for (const auto& [name, bits] : words_) {
    out += name;
    out += ':';
    for (const std::string& bit : bits) {
      out += ' ';
      out += bit;
    }
    out += '\n';
  }
  return out;
}

WordMap WordMap::from_text(const std::string& text) {
  WordMap map;
  for (const std::string& raw_line : util::split(text, '\n')) {
    const std::string line = util::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t colon = line.find(':');
    REBERT_CHECK_MSG(colon != std::string::npos,
                     "word line missing ':': " << line);
    const std::string name = util::trim(line.substr(0, colon));
    REBERT_CHECK_MSG(!name.empty(), "word line missing name: " << line);
    const std::vector<std::string> bits =
        util::split_ws(line.substr(colon + 1));
    map.add_word(name, bits);
  }
  return map;
}

void WordMap::save(const std::string& path) const {
  std::ofstream out(path);
  REBERT_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << to_text();
}

WordMap WordMap::load(const std::string& path) {
  std::ifstream in(path);
  REBERT_CHECK_MSG(in.good(), "cannot open words file " << path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return from_text(text);
}

}  // namespace rebert::nl
