// Netlist optimization passes.
//
// The paper motivates learned reverse engineering with the observation
// that synthesis optimization destroys recognizable structure ([10]/[11]
// discussion in §I). This module provides the standard cleanup passes a
// synthesis tool applies, so experiments can evaluate recovery on
// *optimized* netlists (see bench/ablation_optimization):
//   * constant folding / propagation (incl. controlling-value shortcuts),
//   * BUF and double-inverter elimination,
//   * structural hashing (merging duplicate gates),
//   * dead-logic sweep (anything outside the cone of outputs and DFFs).
// All passes are functionally safe; tests verify equivalence by random
// simulation. Primary I/O and flip-flop names always survive.
#pragma once

#include "nl/netlist.h"

namespace rebert::nl {

struct OptOptions {
  bool fold_constants = true;
  bool collapse_buffers = true;   // BUF(x) -> x, NOT(NOT(x)) -> x
  bool structural_hash = true;    // merge identical (type, fanins) gates
  bool sweep_dead = true;         // drop logic feeding nothing observable
};

struct OptReport {
  int folded_gates = 0;      // gates simplified by constant propagation
  int collapsed_buffers = 0; // BUFs / inverter pairs removed
  int merged_gates = 0;      // duplicates merged by structural hashing
  int dead_gates = 0;        // removed by the sweep
  int gates_before = 0;      // combinational count in the input
  int gates_after = 0;       // combinational count in the output
};

/// Optimize a copy of `input`. Primary inputs, primary outputs, and DFFs
/// are preserved by name; an output whose driver is simplified away is
/// re-materialized as a BUF so the named net survives.
Netlist optimize_netlist(const Netlist& input, const OptOptions& options = {},
                         OptReport* report = nullptr);

}  // namespace rebert::nl
