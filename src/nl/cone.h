// Fan-in cone extraction (§II-A-1).
//
// For each bit (a net feeding a sequential element) the paper builds a
// binary tree of the combinational sub-circuit driving it, backtracing a
// bounded number of gate levels. Because real cones are DAGs (gates with
// fanout > 1 appear on several paths), the tree duplicates shared logic —
// exactly what a tree representation implies. Leaves are the cut points:
// primary inputs, constants, DFF outputs, and gates beyond the depth bound.
//
// extract_cone expects a 2-input-decomposed netlist when a *binary* tree is
// required (the tokenizer enforces this); on general netlists it produces an
// n-ary tree, which the structural baseline also consumes.
#pragma once

#include <string>
#include <vector>

#include "nl/netlist.h"

namespace rebert::nl {

struct ConeNode {
  GateType type = GateType::kInput;  // gate type; for leaves: the cut net's
                                     // driver type (INPUT/DFF/CONST/gate)
  bool is_leaf = false;
  std::string name;                  // net name (kept for leaves; §II-A-2
                                     // generalizes it to 'X' downstream)
  std::vector<int> children;         // indices into ConeTree::nodes
};

struct ConeTree {
  std::vector<ConeNode> nodes;  // nodes[0] is the root; pre-order layout
  int depth = 0;                // gate levels actually reached

  int size() const { return static_cast<int>(nodes.size()); }
  const ConeNode& root() const { return nodes.at(0); }

  /// Number of leaves.
  int num_leaves() const;

  /// Pre-order list of node indices (identity permutation by construction —
  /// kept explicit so downstream code does not depend on the layout).
  std::vector<int> preorder() const;
};

/// Backtrace `max_depth` combinational levels from `root_net`. The root
/// counts as level 1 if it is combinational; a non-combinational root yields
/// a single-leaf tree.
ConeTree extract_cone(const Netlist& netlist, GateId root_net, int max_depth);

/// Render as an S-expression, e.g. "(AND (NOT x) y)" — used by tests and
/// the structural baseline's canonical signatures.
std::string cone_to_sexpr(const ConeTree& tree, bool generalize_leaves);

}  // namespace rebert::nl
