#include "nl/gate.h"

#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::nl {

const char* gate_type_name(GateType type) {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kOr: return "OR";
    case GateType::kNand: return "NAND";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMux: return "MUX";
    case GateType::kDff: return "DFF";
  }
  return "?";
}

GateType gate_type_from_name(const std::string& name) {
  const std::string n = util::to_upper(name);
  if (n == "INPUT") return GateType::kInput;
  if (n == "CONST0") return GateType::kConst0;
  if (n == "CONST1") return GateType::kConst1;
  if (n == "BUF" || n == "BUFF") return GateType::kBuf;
  if (n == "NOT" || n == "INV") return GateType::kNot;
  if (n == "AND") return GateType::kAnd;
  if (n == "OR") return GateType::kOr;
  if (n == "NAND") return GateType::kNand;
  if (n == "NOR") return GateType::kNor;
  if (n == "XOR") return GateType::kXor;
  if (n == "XNOR") return GateType::kXnor;
  if (n == "MUX") return GateType::kMux;
  if (n == "DFF") return GateType::kDff;
  REBERT_CHECK_MSG(false, "unknown gate type name: " << name);
}

bool is_source(GateType type) {
  return type == GateType::kInput || type == GateType::kConst0 ||
         type == GateType::kConst1;
}

bool is_sequential(GateType type) { return type == GateType::kDff; }

bool is_combinational(GateType type) {
  return !is_source(type) && !is_sequential(type);
}

bool is_decomposable(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

ArityRange gate_arity(GateType type) {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return {0, 0};
    case GateType::kBuf:
    case GateType::kNot:
      return {1, 1};
    case GateType::kAnd:
    case GateType::kOr:
    case GateType::kNand:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return {2, -1};
    case GateType::kMux:
      return {3, 3};
    case GateType::kDff:
      return {1, 1};
  }
  return {0, 0};
}

bool eval_gate(GateType type, const std::vector<bool>& inputs) {
  const ArityRange ar = gate_arity(type);
  REBERT_CHECK_MSG(static_cast<int>(inputs.size()) >= ar.min &&
                       (ar.max < 0 ||
                        static_cast<int>(inputs.size()) <= ar.max),
                   "bad arity " << inputs.size() << " for "
                                << gate_type_name(type));
  switch (type) {
    case GateType::kConst0: return false;
    case GateType::kConst1: return true;
    case GateType::kBuf: return inputs[0];
    case GateType::kNot: return !inputs[0];
    case GateType::kAnd: {
      for (bool v : inputs)
        if (!v) return false;
      return true;
    }
    case GateType::kOr: {
      for (bool v : inputs)
        if (v) return true;
      return false;
    }
    case GateType::kNand: {
      for (bool v : inputs)
        if (!v) return true;
      return false;
    }
    case GateType::kNor: {
      for (bool v : inputs)
        if (v) return false;
      return true;
    }
    case GateType::kXor: {
      bool acc = false;
      for (bool v : inputs) acc ^= v;
      return acc;
    }
    case GateType::kXnor: {
      bool acc = true;
      for (bool v : inputs) acc ^= v;
      return acc;
    }
    case GateType::kMux:
      return inputs[0] ? inputs[2] : inputs[1];
    case GateType::kInput:
    case GateType::kDff:
      REBERT_CHECK_MSG(false, "eval_gate on non-combinational gate "
                                  << gate_type_name(type));
  }
  return false;
}

}  // namespace rebert::nl
