#include "nl/opt.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace rebert::nl {

namespace {

// Builder state for the rewrite pass.
struct Rewriter {
  const Netlist& in;
  const OptOptions& options;
  Netlist out;
  OptReport report;
  std::vector<GateId> remap;  // old id -> new id
  GateId const0 = kNoGate;
  GateId const1 = kNoGate;
  // structural hashing: (type, fanins) -> new gate id
  std::map<std::pair<GateType, std::vector<GateId>>, GateId> strash;

  explicit Rewriter(const Netlist& input, const OptOptions& opts)
      : in(input), options(opts), out(input.name()),
        remap(static_cast<std::size_t>(input.num_gates()), kNoGate) {}

  GateId get_const(bool value) {
    GateId& slot = value ? const1 : const0;
    if (slot == kNoGate) {
      // Avoid both current and *future* names (original gates are emitted
      // after constants may already exist).
      std::string name = value ? "opt_const1" : "opt_const0";
      while (in.find(name) || out.find(name)) name += "_";
      slot = out.add_const(value, name);
    }
    return slot;
  }

  bool is_const(GateId new_id, bool* value) const {
    const GateType t = out.gate(new_id).type;
    if (t == GateType::kConst0) {
      *value = false;
      return true;
    }
    if (t == GateType::kConst1) {
      *value = true;
      return true;
    }
    return false;
  }

  // Create (or reuse via strash) a combinational gate.
  GateId emit(GateType type, std::vector<GateId> fanins,
              const std::string& name) {
    if (options.structural_hash) {
      std::vector<GateId> canonical = fanins;
      if (is_decomposable(type))  // commutative types
        std::sort(canonical.begin(), canonical.end());
      const auto key = std::make_pair(type, std::move(canonical));
      auto it = strash.find(key);
      if (it != strash.end()) {
        ++report.merged_gates;
        return it->second;
      }
      const GateId id = out.add_gate(type, std::move(fanins), name);
      strash.emplace(key, id);
      return id;
    }
    return out.add_gate(type, std::move(fanins), name);
  }

  // Returns the new-net id computing NOT(x), folding constants and double
  // inversion.
  GateId emit_not(GateId x, const std::string& name) {
    bool value = false;
    if (options.fold_constants && is_const(x, &value)) {
      ++report.folded_gates;
      return get_const(!value);
    }
    if (options.collapse_buffers && out.gate(x).type == GateType::kNot) {
      ++report.collapsed_buffers;
      return out.gate(x).fanins[0];
    }
    return emit(GateType::kNot, {x}, name);
  }

  // Rewrite one original combinational gate; returns its new-net id.
  GateId rewrite(const Gate& g) {
    std::vector<GateId> fanins;
    fanins.reserve(g.fanins.size());
    for (GateId f : g.fanins) {
      REBERT_CHECK(remap[static_cast<std::size_t>(f)] != kNoGate);
      fanins.push_back(remap[static_cast<std::size_t>(f)]);
    }

    switch (g.type) {
      case GateType::kBuf: {
        if (options.collapse_buffers) {
          ++report.collapsed_buffers;
          return fanins[0];
        }
        return emit(GateType::kBuf, std::move(fanins), g.name);
      }
      case GateType::kNot:
        return emit_not(fanins[0], g.name);
      case GateType::kAnd:
      case GateType::kNand:
        return rewrite_and_like(g, std::move(fanins));
      case GateType::kOr:
      case GateType::kNor:
        return rewrite_or_like(g, std::move(fanins));
      case GateType::kXor:
      case GateType::kXnor:
        return rewrite_xor_like(g, std::move(fanins));
      case GateType::kMux:
        return rewrite_mux(g, std::move(fanins));
      default:
        REBERT_CHECK_MSG(false, "unexpected gate type in rewrite");
    }
  }

  GateId rewrite_and_like(const Gate& g, std::vector<GateId> fanins) {
    const bool inverting = g.type == GateType::kNand;
    if (options.fold_constants) {
      std::vector<GateId> kept;
      for (GateId f : fanins) {
        bool value = false;
        if (is_const(f, &value)) {
          if (!value) {  // controlling value
            ++report.folded_gates;
            return get_const(inverting);
          }
          continue;  // non-controlling: drop
        }
        if (std::find(kept.begin(), kept.end(), f) == kept.end())
          kept.push_back(f);  // x AND x = x
      }
      if (kept.size() != fanins.size()) ++report.folded_gates;
      if (kept.empty()) return get_const(!inverting);
      if (kept.size() == 1)
        return inverting ? emit_not(kept[0], g.name) : kept[0];
      fanins = std::move(kept);
    }
    return emit(g.type, std::move(fanins), g.name);
  }

  GateId rewrite_or_like(const Gate& g, std::vector<GateId> fanins) {
    const bool inverting = g.type == GateType::kNor;
    if (options.fold_constants) {
      std::vector<GateId> kept;
      for (GateId f : fanins) {
        bool value = false;
        if (is_const(f, &value)) {
          if (value) {  // controlling value
            ++report.folded_gates;
            return get_const(!inverting);
          }
          continue;
        }
        if (std::find(kept.begin(), kept.end(), f) == kept.end())
          kept.push_back(f);  // x OR x = x
      }
      if (kept.size() != fanins.size()) ++report.folded_gates;
      if (kept.empty()) return get_const(inverting);
      if (kept.size() == 1)
        return inverting ? emit_not(kept[0], g.name) : kept[0];
      fanins = std::move(kept);
    }
    return emit(g.type, std::move(fanins), g.name);
  }

  GateId rewrite_xor_like(const Gate& g, std::vector<GateId> fanins) {
    bool invert = g.type == GateType::kXnor;
    if (options.fold_constants) {
      // Constants toggle the inversion; identical nets cancel pairwise.
      std::map<GateId, int> counts;
      bool changed = false;
      for (GateId f : fanins) {
        bool value = false;
        if (is_const(f, &value)) {
          if (value) invert = !invert;
          changed = true;
          continue;
        }
        ++counts[f];
      }
      std::vector<GateId> kept;
      for (const auto& [net, count] : counts) {
        if (count % 2 == 1) kept.push_back(net);
        if (count > 1) changed = true;
      }
      if (changed) ++report.folded_gates;
      if (kept.empty()) return get_const(invert);
      if (kept.size() == 1)
        return invert ? emit_not(kept[0], g.name) : kept[0];
      return emit(invert ? GateType::kXnor : GateType::kXor,
                  std::move(kept), g.name);
    }
    return emit(g.type, std::move(fanins), g.name);
  }

  GateId rewrite_mux(const Gate& g, std::vector<GateId> fanins) {
    const GateId sel = fanins[0], a = fanins[1], b = fanins[2];
    if (options.fold_constants) {
      bool value = false;
      if (is_const(sel, &value)) {
        ++report.folded_gates;
        return value ? b : a;
      }
      if (a == b) {
        ++report.folded_gates;
        return a;
      }
    }
    return emit(GateType::kMux, std::move(fanins), g.name);
  }
};

// Mark-and-copy: keep only logic in the cone of outputs and DFFs; primary
// inputs are always kept (they are the interface).
Netlist sweep_dead_logic(const Netlist& in, OptReport* report) {
  std::vector<bool> live(static_cast<std::size_t>(in.num_gates()), false);
  std::vector<GateId> stack;
  auto mark = [&](GateId id) {
    if (!live[static_cast<std::size_t>(id)]) {
      live[static_cast<std::size_t>(id)] = true;
      stack.push_back(id);
    }
  };
  for (GateId id : in.outputs()) mark(id);
  for (GateId id : in.dffs()) mark(id);
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    for (GateId f : in.gate(id).fanins) mark(f);
  }

  Netlist out(in.name());
  std::vector<GateId> remap(static_cast<std::size_t>(in.num_gates()),
                            kNoGate);
  // Interface first.
  for (GateId id : in.inputs()) remap[static_cast<std::size_t>(id)] =
      out.add_input(in.gate(id).name);
  for (GateId id = 0; id < in.num_gates(); ++id) {
    const Gate& g = in.gate(id);
    if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
      if (live[static_cast<std::size_t>(id)])
        remap[static_cast<std::size_t>(id)] =
            out.add_const(g.type == GateType::kConst1, g.name);
    } else if (g.type == GateType::kDff) {
      const GateId self = static_cast<GateId>(out.num_gates());
      remap[static_cast<std::size_t>(id)] = out.add_dff(self, g.name);
    }
  }
  int dropped = 0;
  for (GateId id : in.topological_order()) {
    if (!live[static_cast<std::size_t>(id)]) {
      ++dropped;
      continue;
    }
    const Gate& g = in.gate(id);
    std::vector<GateId> fanins;
    fanins.reserve(g.fanins.size());
    for (GateId f : g.fanins) {
      REBERT_CHECK(remap[static_cast<std::size_t>(f)] != kNoGate);
      fanins.push_back(remap[static_cast<std::size_t>(f)]);
    }
    remap[static_cast<std::size_t>(id)] =
        out.add_gate(g.type, std::move(fanins), g.name);
  }
  for (GateId id = 0; id < in.num_gates(); ++id) {
    const Gate& g = in.gate(id);
    if (g.type != GateType::kDff) continue;
    out.replace_gate(remap[static_cast<std::size_t>(id)], GateType::kDff,
                     {remap[static_cast<std::size_t>(g.fanins[0])]});
  }
  for (GateId id : in.outputs())
    out.mark_output(remap[static_cast<std::size_t>(id)]);
  if (report) report->dead_gates += dropped;
  return out;
}

}  // namespace

Netlist optimize_netlist(const Netlist& input, const OptOptions& options,
                         OptReport* report) {
  Rewriter rewriter(input, options);
  rewriter.report.gates_before = input.stats().num_comb_gates;

  // Interface and sequential elements first.
  for (GateId id : input.inputs())
    rewriter.remap[static_cast<std::size_t>(id)] =
        rewriter.out.add_input(input.gate(id).name);
  for (GateId id = 0; id < input.num_gates(); ++id) {
    const Gate& g = input.gate(id);
    if (g.type == GateType::kConst0 || g.type == GateType::kConst1)
      rewriter.remap[static_cast<std::size_t>(id)] =
          rewriter.get_const(g.type == GateType::kConst1);
    else if (g.type == GateType::kDff) {
      const GateId self = static_cast<GateId>(rewriter.out.num_gates());
      rewriter.remap[static_cast<std::size_t>(id)] =
          rewriter.out.add_dff(self, g.name);
    }
  }

  for (GateId id : input.topological_order())
    rewriter.remap[static_cast<std::size_t>(id)] =
        rewriter.rewrite(input.gate(id));

  for (GateId id = 0; id < input.num_gates(); ++id) {
    const Gate& g = input.gate(id);
    if (g.type != GateType::kDff) continue;
    rewriter.out.replace_gate(
        rewriter.remap[static_cast<std::size_t>(id)], GateType::kDff,
        {rewriter.remap[static_cast<std::size_t>(g.fanins[0])]});
  }

  // Outputs: re-materialize names simplified away.
  for (GateId id : input.outputs()) {
    const GateId mapped = rewriter.remap[static_cast<std::size_t>(id)];
    const std::string& original_name = input.gate(id).name;
    if (rewriter.out.gate(mapped).name == original_name) {
      rewriter.out.mark_output(mapped);
    } else {
      const GateId buf =
          rewriter.out.add_gate(GateType::kBuf, {mapped}, original_name);
      rewriter.out.mark_output(buf);
    }
  }

  Netlist result = options.sweep_dead
                       ? sweep_dead_logic(rewriter.out, &rewriter.report)
                       : std::move(rewriter.out);
  rewriter.report.gates_after = result.stats().num_comb_gates;
  result.validate();
  if (report) *report = rewriter.report;
  return result;
}

}  // namespace rebert::nl
