#include "nl/export_dot.h"

#include <sstream>

#include "util/check.h"

namespace rebert::nl {

namespace {

// DOT identifiers: quote everything, escape embedded quotes/backslashes.
std::string quoted(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

const char* shape_of(GateType type) {
  switch (type) {
    case GateType::kInput: return "invtriangle";
    case GateType::kConst0:
    case GateType::kConst1: return "plaintext";
    case GateType::kDff: return "box";
    default: return "ellipse";
  }
}

}  // namespace

void write_dot(const Netlist& netlist, const WordMap& words,
               std::ostream& out, const DotOptions& options) {
  REBERT_CHECK_MSG(netlist.num_gates() <= options.max_gates,
                   "netlist too large to render (" << netlist.num_gates()
                                                   << " gates; raise "
                                                      "DotOptions::max_gates)");
  out << "digraph " << quoted(netlist.name()) << " {\n";
  out << "  rankdir=LR;\n  node [fontsize=10];\n";

  // Word clusters.
  std::vector<bool> clustered(static_cast<std::size_t>(netlist.num_gates()),
                              false);
  if (options.cluster_words) {
    int cluster = 0;
    for (const auto& [word_name, bit_names] : words.words()) {
      out << "  subgraph cluster_" << cluster++ << " {\n";
      out << "    label=" << quoted(word_name) << ";\n    style=dashed;\n";
      for (const std::string& bit : bit_names) {
        const auto id = netlist.find(bit);
        if (!id) continue;
        clustered[static_cast<std::size_t>(*id)] = true;
        out << "    " << quoted(bit) << ";\n";
      }
      out << "  }\n";
    }
  }

  for (GateId id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    out << "  " << quoted(g.name) << " [shape=" << shape_of(g.type);
    if (options.show_gate_types && !is_source(g.type))
      out << ", label=" << quoted(g.name + "\\n" + gate_type_name(g.type));
    if (netlist.is_output(id)) out << ", peripheries=2";
    out << "];\n";
  }
  for (GateId id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    for (GateId f : g.fanins)
      out << "  " << quoted(netlist.gate(f).name) << " -> "
          << quoted(g.name) << ";\n";
  }
  out << "}\n";
}

std::string dot_string(const Netlist& netlist, const WordMap& words,
                       const DotOptions& options) {
  std::ostringstream out;
  write_dot(netlist, words, out, options);
  return out.str();
}

std::string cone_dot_string(const ConeTree& tree) {
  std::ostringstream out;
  out << "digraph cone {\n  rankdir=TB;\n";
  for (int i = 0; i < tree.size(); ++i) {
    const ConeNode& node = tree.nodes[static_cast<std::size_t>(i)];
    const std::string label =
        node.is_leaf ? node.name : gate_type_name(node.type);
    out << "  n" << i << " [label=" << quoted(label)
        << (node.is_leaf ? ", shape=plaintext" : ", shape=ellipse")
        << "];\n";
  }
  for (int i = 0; i < tree.size(); ++i)
    for (int child : tree.nodes[static_cast<std::size_t>(i)].children)
      out << "  n" << i << " -> n" << child << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace rebert::nl
