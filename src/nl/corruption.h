// Controlled netlist corruption (§III-A-1).
//
// Each combinational gate is visited and, with probability R-Index, replaced
// by a randomly chosen functionally-equivalent template (e.g.
// A = NAND(B,C)  ->  A = OR(NOT(B), NOT(C)), the paper's own example).
// R = 0 leaves the netlist untouched; R = 1 replaces every gate that has a
// template. Replacement keeps the original output net (all fanout stays
// wired) and adds fresh helper gates, so word ground truth, primary I/O and
// DFFs are unaffected while local structure is scrambled.
//
// Templates are defined for 2-input AND/OR/NAND/NOR/XOR/XNOR and for
// NOT/BUF. Gates of other types (wide gates, MUX) are corrupted after
// decomposition in the pipeline; corrupt_netlist itself accepts any netlist
// and simply skips gates without templates.
#pragma once

#include <string>
#include <vector>

#include "nl/netlist.h"
#include "util/rng.h"

namespace rebert::nl {

struct CorruptionOptions {
  double r_index = 0.0;   // probability of replacing each eligible gate
  std::uint64_t seed = 7;
  /// Restrict to one template per gate type (template 0) — used by tests
  /// and by the "systematic corruption" ablation.
  bool deterministic_templates = false;
};

struct CorruptionReport {
  int eligible_gates = 0;   // gates having at least one template
  int replaced_gates = 0;
  int added_gates = 0;      // helper gates created by templates
  double realized_ratio() const {
    return eligible_gates ? static_cast<double>(replaced_gates) /
                                static_cast<double>(eligible_gates)
                          : 0.0;
  }
};

/// Number of equivalence templates available for a gate type (0 if the type
/// cannot be corrupted).
int num_templates(GateType type, int arity);

/// Corrupt a copy of `input` with the given options.
Netlist corrupt_netlist(const Netlist& input, const CorruptionOptions& options,
                        CorruptionReport* report = nullptr);

}  // namespace rebert::nl
