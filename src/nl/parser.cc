#include "nl/parser.h"

#include <fstream>
#include <sstream>

#include "nl/lint.h"
#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::nl {

namespace {

struct Statement {
  enum class Kind { kInput, kOutput, kGate } kind;
  std::string lhs;                 // defined net (empty for OUTPUT)
  std::string output_net;         // for OUTPUT statements
  GateType type = GateType::kInput;
  std::vector<std::string> args;  // fanin net names
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "bench parse error at line " << line << ": " << message;
  throw ParseError(os.str());
}

// Parses "NAME ( a , b , ... )" -> {NAME, args}. `text` has no '=' part.
void parse_call(const std::string& text, int line, std::string* callee,
                std::vector<std::string>* args) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open)
    fail(line, "expected NAME(arg, ...), got '" + text + "'");
  *callee = util::trim(text.substr(0, open));
  if (callee->empty()) fail(line, "missing function name");
  args->clear();
  const std::string inner =
      util::trim(text.substr(open + 1, close - open - 1));
  if (inner.empty()) return;
  for (const std::string& piece : util::split(inner, ',')) {
    const std::string arg = util::trim(piece);
    if (arg.empty()) fail(line, "empty argument in '" + text + "'");
    args->push_back(arg);
  }
}

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& netlist_name,
                    const ParseOptions& options) {
  std::vector<Statement> statements;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string text = util::trim(line);
    if (text.empty()) continue;

    Statement st;
    st.line = line_no;
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos) {
      std::string callee;
      std::vector<std::string> args;
      parse_call(text, line_no, &callee, &args);
      const std::string upper = util::to_upper(callee);
      if (args.size() != 1)
        fail(line_no, upper + " expects exactly one net name");
      if (upper == "INPUT") {
        st.kind = Statement::Kind::kInput;
        st.lhs = args[0];
      } else if (upper == "OUTPUT") {
        st.kind = Statement::Kind::kOutput;
        st.output_net = args[0];
      } else {
        fail(line_no, "unknown directive '" + callee + "'");
      }
    } else {
      st.kind = Statement::Kind::kGate;
      st.lhs = util::trim(text.substr(0, eq));
      if (st.lhs.empty()) fail(line_no, "missing left-hand side");
      std::string callee;
      parse_call(util::trim(text.substr(eq + 1)), line_no, &callee, &st.args);
      try {
        st.type = gate_type_from_name(callee);
      } catch (const util::CheckError&) {
        fail(line_no, "unknown gate type '" + callee + "'");
      }
      if (st.type == GateType::kInput)
        fail(line_no, "INPUT cannot appear on the right-hand side");
    }
    statements.push_back(std::move(st));
  }

  Netlist netlist(netlist_name);

  // Pass 1: create all defined gates so forward references resolve; gates
  // whose fanins are not known yet get placeholder fanins that pass 2
  // rewires. Sources and DFFs are created first so a valid placeholder id
  // always exists by the time the first combinational gate is created (a
  // netlist whose combinational gates have no source at all is cyclic and
  // rejected by validate()).
  std::vector<std::pair<GateId, const Statement*>> pending;
  auto define_check = [&](const Statement& st) {
    if (netlist.find(st.lhs))
      fail(st.line, "net '" + st.lhs + "' defined twice");
  };
  for (const Statement& st : statements) {
    if (st.kind == Statement::Kind::kInput) {
      define_check(st);
      netlist.add_input(st.lhs);
    } else if (st.kind == Statement::Kind::kGate &&
               (st.type == GateType::kConst0 ||
                st.type == GateType::kConst1)) {
      define_check(st);
      if (!st.args.empty()) fail(st.line, "constants take no arguments");
      netlist.add_const(st.type == GateType::kConst1, st.lhs);
    }
  }
  for (const Statement& st : statements) {
    if (st.kind != Statement::Kind::kGate || st.type != GateType::kDff)
      continue;
    define_check(st);
    if (st.args.size() != 1) fail(st.line, "DFF expects exactly one fanin");
    // Self-reference is always a legal placeholder for a DFF.
    const GateId self = static_cast<GateId>(netlist.num_gates());
    const GateId id = netlist.add_dff(self, st.lhs);
    pending.emplace_back(id, &st);
  }
  for (const Statement& st : statements) {
    if (st.kind != Statement::Kind::kGate) continue;
    if (st.type == GateType::kDff || st.type == GateType::kConst0 ||
        st.type == GateType::kConst1)
      continue;
    define_check(st);
    if (netlist.num_gates() == 0)
      fail(st.line,
           "netlist has no primary inputs, constants, or flip-flops; "
           "combinational logic would be cyclic");
    std::vector<GateId> placeholder(st.args.size(), 0);
    const GateId id = netlist.add_gate(st.type, std::move(placeholder),
                                       st.lhs);
    pending.emplace_back(id, &st);
  }

  // Pass 2: resolve fanins by name.
  for (auto& [id, st] : pending) {
    std::vector<GateId> fanins;
    fanins.reserve(st->args.size());
    for (const std::string& arg : st->args) {
      auto ref = netlist.find(arg);
      if (!ref)
        fail(st->line, "undefined net '" + arg + "'");
      fanins.push_back(*ref);
    }
    netlist.replace_gate(id, netlist.gate(id).type, std::move(fanins));
  }

  // Pass 3: outputs.
  for (const Statement& st : statements) {
    if (st.kind != Statement::Kind::kOutput) continue;
    auto ref = netlist.find(st.output_net);
    if (!ref) fail(st.line, "OUTPUT references undefined net '" +
                                st.output_net + "'");
    netlist.mark_output(*ref);
  }

  netlist.validate();

  if (options.lint || options.lint_report) {
    LintReport report = lint_netlist(netlist);
    if (options.lint && !report.clean())
      throw ParseError("netlist '" + netlist.name() +
                       "' failed lint:\n" + report.to_text());
    if (options.lint_report) *options.lint_report = std::move(report);
  }
  return netlist;
}

Netlist parse_bench_string(const std::string& text,
                           const std::string& netlist_name,
                           const ParseOptions& options) {
  std::istringstream in(text);
  return parse_bench(in, netlist_name, options);
}

Netlist parse_bench_file(const std::string& path,
                         const ParseOptions& options) {
  std::ifstream in(path);
  REBERT_CHECK_MSG(in.good(), "cannot open bench file " << path);
  // Derive a netlist name from the file name (drop directory and extension).
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return parse_bench(in, name, options);
}

void write_bench(const Netlist& netlist, std::ostream& out) {
  out << "# netlist: " << netlist.name() << "\n";
  const NetlistStats stats = netlist.stats();
  out << "# inputs=" << stats.num_inputs << " outputs=" << stats.num_outputs
      << " dffs=" << stats.num_dffs << " gates=" << stats.num_comb_gates
      << "\n";
  for (GateId id : netlist.inputs())
    out << "INPUT(" << netlist.gate(id).name << ")\n";
  for (GateId id : netlist.outputs())
    out << "OUTPUT(" << netlist.gate(id).name << ")\n";
  for (GateId id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    if (g.type == GateType::kInput) continue;
    out << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) out << ", ";
      out << netlist.gate(g.fanins[i]).name;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& netlist) {
  std::ostringstream out;
  write_bench(netlist, out);
  return out.str();
}

void write_bench_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  REBERT_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_bench(netlist, out);
}

}  // namespace rebert::nl
