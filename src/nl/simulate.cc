#include "nl/simulate.h"

#include <algorithm>

#include "util/check.h"

namespace rebert::nl {

Simulator::Simulator(const Netlist& netlist)
    : netlist_(netlist),
      topo_(netlist.topological_order()),
      values_(static_cast<std::size_t>(netlist.num_gates()), 0),
      state_(netlist.dffs().size(), 0) {}

void Simulator::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(state_.begin(), state_.end(), 0);
}

void Simulator::set_inputs(const std::vector<bool>& values) {
  const auto& inputs = netlist_.inputs();
  REBERT_CHECK_MSG(values.size() == inputs.size(),
                   "expected " << inputs.size() << " input values, got "
                               << values.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    values_[inputs[i]] = values[i] ? 1 : 0;
}

void Simulator::eval_combinational() {
  // Sources: constants; DFF outputs come from latched state.
  for (GateId id = 0; id < netlist_.num_gates(); ++id) {
    const GateType t = netlist_.gate(id).type;
    if (t == GateType::kConst0) values_[id] = 0;
    if (t == GateType::kConst1) values_[id] = 1;
  }
  const auto& dffs = netlist_.dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i)
    values_[dffs[i]] = state_[i];

  std::vector<bool> fanin_values;
  for (GateId id : topo_) {
    const Gate& g = netlist_.gate(id);
    fanin_values.clear();
    for (GateId f : g.fanins) fanin_values.push_back(values_[f] != 0);
    values_[id] = eval_gate(g.type, fanin_values) ? 1 : 0;
  }
}

void Simulator::step() {
  const auto& dffs = netlist_.dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i)
    state_[i] = values_[netlist_.gate(dffs[i]).fanins[0]];
}

bool Simulator::value(GateId id) const {
  REBERT_CHECK(netlist_.is_valid_id(id));
  return values_[id] != 0;
}

std::vector<bool> Simulator::output_values() const {
  std::vector<bool> out;
  out.reserve(netlist_.outputs().size());
  for (GateId id : netlist_.outputs()) out.push_back(values_[id] != 0);
  return out;
}

std::vector<bool> Simulator::next_state_values() const {
  std::vector<bool> out;
  out.reserve(netlist_.dffs().size());
  for (GateId id : netlist_.dffs())
    out.push_back(values_[netlist_.gate(id).fanins[0]] != 0);
  return out;
}

std::vector<bool> Simulator::state_values() const {
  return std::vector<bool>(state_.begin(), state_.end());
}

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    const EquivalenceOptions& options) {
  EquivalenceResult result;

  // Match inputs by name; require the same input sets.
  REBERT_CHECK_MSG(a.inputs().size() == b.inputs().size(),
                   "input count mismatch");
  // b_slot_for_a[i] = position of a's i-th input within b.inputs().
  std::vector<std::size_t> b_slot_for_a(a.inputs().size());
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    const std::string& name = a.gate(a.inputs()[i]).name;
    auto ib = b.find(name);
    REBERT_CHECK_MSG(ib && b.gate(*ib).type == GateType::kInput,
                     "input '" << name << "' missing in second netlist");
    const auto& b_inputs = b.inputs();
    const auto it = std::find(b_inputs.begin(), b_inputs.end(), *ib);
    REBERT_CHECK(it != b_inputs.end());
    b_slot_for_a[i] = static_cast<std::size_t>(it - b_inputs.begin());
  }

  // Observables: primary outputs of `a` (matched by name in `b`) plus DFF
  // D-values matched via DFF names.
  struct Observable {
    std::string name;
    GateId in_a;
    GateId in_b;
    bool is_dff;  // compare D pin values rather than the net itself
  };
  std::vector<Observable> observables;
  for (GateId oa : a.outputs()) {
    auto ob = b.find(a.gate(oa).name);
    if (ob) observables.push_back({a.gate(oa).name, oa, *ob, false});
  }
  for (GateId fa : a.dffs()) {
    auto fb = b.find(a.gate(fa).name);
    if (fb && b.gate(*fb).type == GateType::kDff)
      observables.push_back({a.gate(fa).name, fa, *fb, true});
  }
  REBERT_CHECK_MSG(!observables.empty(),
                   "no common observables between netlists");

  Simulator sim_a(a);
  Simulator sim_b(b);
  util::Rng rng(options.seed);

  for (int seq = 0; seq < options.num_sequences; ++seq) {
    sim_a.reset();
    sim_b.reset();
    for (int cycle = 0; cycle < options.cycles_per_sequence; ++cycle) {
      std::vector<bool> in_a(a.inputs().size());
      for (std::size_t i = 0; i < in_a.size(); ++i)
        in_a[i] = rng.bernoulli(0.5);
      // Align b's inputs by name with a's ordering.
      std::vector<bool> in_b(b.inputs().size());
      for (std::size_t i = 0; i < a.inputs().size(); ++i)
        in_b[b_slot_for_a[i]] = in_a[i];
      sim_a.set_inputs(in_a);
      sim_b.set_inputs(in_b);
      sim_a.eval_combinational();
      sim_b.eval_combinational();

      for (const Observable& obs : observables) {
        const bool va = obs.is_dff
                            ? sim_a.value(a.gate(obs.in_a).fanins[0])
                            : sim_a.value(obs.in_a);
        const bool vb = obs.is_dff
                            ? sim_b.value(b.gate(obs.in_b).fanins[0])
                            : sim_b.value(obs.in_b);
        if (va != vb) {
          result.equivalent = false;
          result.failing_sequence = seq;
          result.failing_cycle = cycle;
          result.mismatched_net = obs.name;
          return result;
        }
      }
      sim_a.step();
      sim_b.step();
    }
  }
  return result;
}

}  // namespace rebert::nl
