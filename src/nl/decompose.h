// k-input → 2-input gate decomposition (§II-A-1).
//
// ReBERT standardizes the netlist into binary-tree form before tokenizing:
// every combinational gate with more than two fanins is rewritten into a
// tree of 2-input gates using fixed templates, and MUX cells are lowered to
// AND/OR/NOT form. The rewrite is purely structural and functionally
// equivalent (verified by the equivalence tests):
//   AND(a,b,c,...)  -> AND2 chain
//   NAND(a,...,z)   -> NAND2(AND-chain(a..y), z)
//   OR / NOR / XOR / XNOR analogously (XOR = parity chain)
//   MUX(s,a,b)      -> OR(AND(NOT s, a), AND(s, b))
#pragma once

#include "nl/netlist.h"

namespace rebert::nl {

struct DecomposeOptions {
  /// true  -> left-leaning chains (a ((b c) d)-style nesting),
  /// false -> balanced trees (minimizes depth). The paper does not specify;
  /// left-leaning is the default because it matches the associativity order
  /// synthesis tools emit most often.
  bool balanced = false;
  /// Also lower MUX cells to AND/OR/NOT form.
  bool lower_mux = true;
};

/// Returns a new netlist in which every combinational gate has at most two
/// fanins. Net names of original gates are preserved (so word ground truth
/// and primary I/O carry over); helper gates get fresh names.
Netlist decompose_to_2input(const Netlist& input,
                            const DecomposeOptions& options = {});

/// True if every combinational gate has <= 2 fanins and no MUX remains.
bool is_2input(const Netlist& netlist);

}  // namespace rebert::nl
