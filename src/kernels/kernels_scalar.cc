// Portable scalar backend: the numerics the repo shipped with before the
// kernel subsystem, preserved loop-for-loop so the scalar backend stays
// the bit-exact reference the parity tests compare AVX2 against.
//
// One deliberate change from the pre-kernel tensor/ops.cc code: the GEMM
// rank-1 loops no longer skip zero A entries. The skip was a scalar-only
// micro-optimization that also skipped NaN/Inf propagation (0 * NaN
// contributes NaN; "skip because a == 0" contributes nothing), which
// would have made the graphcheck tripwire backend-dependent. For finite
// inputs the results are bit-identical with or without the skip.
#include <cmath>

#include "kernels/kernels.h"

namespace rebert::kernels {

namespace {

void scalar_gemm(const float* a, const float* b, float* c, int m, int k,
                 int n) {
  // ikj loop order: streams through B and C rows; good cache behaviour
  // without explicit blocking at scalar speeds.
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(m) * n; ++i)
    c[i] = 0.0f;
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    const float* arow = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void scalar_gemm_tn(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(k) * n; ++i)
    c[i] = 0.0f;
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    const float* brow = b + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      float* crow = c + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void scalar_gemm_nt(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
}

void scalar_add_row_bias(float* x, const float* bias, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    float* row = x + static_cast<std::size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void scalar_axpy(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scalar_scale(float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void scalar_softmax_rows(float* x, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    float* row = x + static_cast<std::size_t>(i) * cols;
    float row_max = row[0];
    for (int j = 1; j < cols; ++j) row_max = std::max(row_max, row[j]);
    float total = 0.0f;
    for (int j = 0; j < cols; ++j) {
      const float e = std::exp(row[j] - row_max);
      row[j] = e;
      total += e;
    }
    const float inv = 1.0f / total;
    for (int j = 0; j < cols; ++j) row[j] *= inv;
  }
}

void scalar_softmax_rows_backward(const float* dy, const float* y, float* dx,
                                  int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* dyr = dy + static_cast<std::size_t>(i) * cols;
    const float* yr = y + static_cast<std::size_t>(i) * cols;
    float* dxr = dx + static_cast<std::size_t>(i) * cols;
    float dot = 0.0f;
    for (int j = 0; j < cols; ++j) dot += dyr[j] * yr[j];
    for (int j = 0; j < cols; ++j) dxr[j] = yr[j] * (dyr[j] - dot);
  }
}

void scalar_layer_norm(const float* x, const float* gamma, const float* beta,
                       float eps, int rows, int cols, float* y,
                       float* normalized, float* inv_std) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<std::size_t>(i) * cols;
    float* yr = y + static_cast<std::size_t>(i) * cols;
    double mean = 0.0;
    for (int j = 0; j < cols; ++j) mean += xr[j];
    mean /= cols;
    double var = 0.0;
    for (int j = 0; j < cols; ++j) {
      const double d = xr[j] - mean;
      var += d * d;
    }
    var /= cols;
    const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
    if (inv_std) inv_std[i] = istd;
    float* nr = normalized
                    ? normalized + static_cast<std::size_t>(i) * cols
                    : nullptr;
    const float fmean = static_cast<float>(mean);
    for (int j = 0; j < cols; ++j) {
      const float nrm = (xr[j] - fmean) * istd;
      if (nr) nr[j] = nrm;
      yr[j] = nrm * gamma[j] + beta[j];
    }
  }
}

inline float norm_cdf(float x) {
  return 0.5f * (1.0f + std::erf(x * 0.70710678118654752440f));
}
inline float norm_pdf(float x) {
  return 0.39894228040143267794f * std::exp(-0.5f * x * x);
}

void scalar_gelu(const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] * norm_cdf(x[i]);
}

void scalar_gelu_backward(const float* dy, const float* x, float* dx,
                          std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float g = norm_cdf(x[i]) + x[i] * norm_pdf(x[i]);
    dx[i] = dy[i] * g;
  }
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table{
      scalar_gemm,
      scalar_gemm_tn,
      scalar_gemm_nt,
      scalar_add_row_bias,
      scalar_axpy,
      scalar_scale,
      scalar_softmax_rows,
      scalar_softmax_rows_backward,
      scalar_layer_norm,
      scalar_gelu,
      scalar_gelu_backward,
  };
  return table;
}

}  // namespace rebert::kernels
