// Runtime CPU-feature dispatch for the compute-kernel library.
//
// Two backends implement the same kernel table (kernels.h): a portable
// scalar fallback that preserves the pre-kernel numerics bit-for-bit, and
// an AVX2+FMA path compiled into its own translation unit with -mavx2
// -mfma and selected only after a cpuid probe, so the binary stays legal
// on any x86-64 (and non-x86 builds simply never compile the SIMD TU).
//
// Selection, in priority order:
//   1. set_backend() / apply_backend_spec() — the `--kernels` CLI flag.
//   2. The REBERT_KERNELS environment variable: auto | scalar | avx2.
//   3. "auto": the fastest backend the CPU supports.
// An explicit "avx2" on a machine without AVX2+FMA logs a warning and
// falls back to scalar rather than crashing the daemon — the serving
// fleet is heterogeneous and a bad flag must degrade, not kill.
//
// Determinism contract (verified by tests/kernels/parity_test.cc and
// documented in DESIGN.md "Kernel dispatch & scratch arenas"):
//   * a given backend is bit-identical run-to-run and across thread
//     counts — kernels are single-threaded and allocate no shared state;
//   * scalar vs AVX2 results agree within kParityAtol/kParityRtol on
//     every shape class (FMA contraction and vectorized exp/erf
//     approximations reorder float arithmetic, they do not change it
//     beyond that bound);
//   * NaN/Inf inputs poison outputs identically in both backends, so the
//     graphcheck tripwire fires regardless of dispatch.
#pragma once

#include <string>

namespace rebert::kernels {

enum class Backend {
  kScalar = 0,
  kAvx2 = 1,
};

/// Scalar-vs-SIMD parity bound, checked as |a-b| <= atol + rtol*|b|.
/// Sized for the worst case in the tree: k<=1024 GEMM reductions over
/// N(0,1) data plus the vectorized exp/erf polynomial error (~1.5e-7).
inline constexpr float kParityAtol = 1e-4f;
inline constexpr float kParityRtol = 1e-3f;

/// "scalar" / "avx2" — what stats/health report as kernels=<name>.
const char* backend_name(Backend backend);

/// True when this binary carries the AVX2 TU *and* cpuid reports AVX2+FMA.
bool avx2_available();

/// True when `backend` can be selected on this machine.
bool backend_available(Backend backend);

/// The backend all dispatched kernels currently run on. First call
/// resolves REBERT_KERNELS (then "auto"); later calls are one relaxed
/// atomic load.
Backend active_backend();

/// Force the backend (CLI flag, tests, per-backend benches). Requests for
/// an unavailable backend log a warning and select scalar. Thread-safe,
/// but callers racing in-flight kernels get a mix of backends — set it at
/// startup (the CLI does) or around quiesced regions (the tests do).
void set_backend(Backend backend);

/// Parse "auto" / "" / "scalar" / "avx2" into the backend it selects on
/// this machine. Unknown tokens return false and set *error; an
/// unavailable-but-valid request ("avx2" without the CPU) succeeds with
/// the scalar fallback and a warning, matching set_backend().
bool parse_backend_spec(const std::string& spec, Backend* out,
                        std::string* error);

/// parse + set in one step for the `--kernels` flag. False (with *error)
/// only on an unknown token.
bool apply_backend_spec(const std::string& spec, std::string* error);

}  // namespace rebert::kernels
