// The dispatched compute-kernel API — raw aligned-float-pointer kernels
// behind tensor/ops.cc and the BERT layers.
//
// Everything here is a free function forwarding through the active
// backend's KernelTable (backend.h). The API is deliberately below the
// Tensor abstraction: callers hand in bare pointers plus dimensions, so
// the same entry points serve Tensor-valued ops, arena-backed attention
// temporaries, and the microbenchmarks without copies. All matrices are
// row-major. No kernel allocates from the heap — scratch (GEMM packing
// buffers) comes from the per-thread Arena (arena.h), so the hot path
// performs zero malloc/free regardless of backend.
//
// Aliasing rules: output buffers must not overlap inputs unless the
// kernel is documented in-place (softmax_rows, add_row_bias, scale,
// axpy). gemm* require c to be disjoint from a and b.
#pragma once

#include <cstdint>

#include "kernels/backend.h"

namespace rebert::kernels {

/// One backend's implementation of every kernel. Tests and per-backend
/// benchmarks call through table_for(backend) directly; production code
/// uses the dispatched free functions below.
struct KernelTable {
  // C[m,n] = A[m,k] * B[k,n]; C is overwritten.
  void (*gemm)(const float* a, const float* b, float* c, int m, int k,
               int n);
  // C[k,n] = A^T * B with A[m,k], B[m,n]; C is overwritten.
  void (*gemm_tn)(const float* a, const float* b, float* c, int m, int k,
                  int n);
  // C[m,n] = A * B^T with A[m,k], B[n,k]; C is overwritten.
  void (*gemm_nt)(const float* a, const float* b, float* c, int m, int k,
                  int n);
  // x[i,j] += bias[j], in place.
  void (*add_row_bias)(float* x, const float* bias, int rows, int cols);
  // y += alpha * x.
  void (*axpy)(float* y, const float* x, float alpha, std::int64_t n);
  // x *= alpha, in place.
  void (*scale)(float* x, float alpha, std::int64_t n);
  // Row-wise fused softmax with max-subtraction, in place.
  void (*softmax_rows)(float* x, int rows, int cols);
  // dx_i = y_i * (dy_i - sum_j dy_j y_j) per row; dx may alias dy.
  void (*softmax_rows_backward)(const float* dy, const float* y, float* dx,
                                int rows, int cols);
  // Fused LayerNorm over rows: y = (x - mean) * istd * gamma + beta.
  // `normalized` (the (x-mean)*istd intermediate) and `inv_std` (per-row
  // istd) are written only when non-null — inference passes null and the
  // kernel materializes nothing but y.
  void (*layer_norm)(const float* x, const float* gamma, const float* beta,
                     float eps, int rows, int cols, float* y,
                     float* normalized, float* inv_std);
  // Exact-GELU forward y = x * Phi(x) and backward dx = dy * gelu'(x).
  void (*gelu)(const float* x, float* y, std::int64_t n);
  void (*gelu_backward)(const float* dy, const float* x, float* dx,
                        std::int64_t n);
};

/// The table implementing `backend`. Asking for an unavailable backend
/// returns the scalar table (mirrors set_backend's fallback).
const KernelTable& table_for(Backend backend);

/// The active backend's table (one relaxed atomic load after first use).
const KernelTable& active_table();

// ---- dispatched entry points ----------------------------------------------

inline void gemm(const float* a, const float* b, float* c, int m, int k,
                 int n) {
  active_table().gemm(a, b, c, m, k, n);
}
inline void gemm_tn(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  active_table().gemm_tn(a, b, c, m, k, n);
}
inline void gemm_nt(const float* a, const float* b, float* c, int m, int k,
                    int n) {
  active_table().gemm_nt(a, b, c, m, k, n);
}
inline void add_row_bias(float* x, const float* bias, int rows, int cols) {
  active_table().add_row_bias(x, bias, rows, cols);
}
inline void axpy(float* y, const float* x, float alpha, std::int64_t n) {
  active_table().axpy(y, x, alpha, n);
}
inline void scale(float* x, float alpha, std::int64_t n) {
  active_table().scale(x, alpha, n);
}
inline void softmax_rows(float* x, int rows, int cols) {
  active_table().softmax_rows(x, rows, cols);
}
inline void softmax_rows_backward(const float* dy, const float* y, float* dx,
                                  int rows, int cols) {
  active_table().softmax_rows_backward(dy, y, dx, rows, cols);
}
inline void layer_norm(const float* x, const float* gamma, const float* beta,
                       float eps, int rows, int cols, float* y,
                       float* normalized, float* inv_std) {
  active_table().layer_norm(x, gamma, beta, eps, rows, cols, y, normalized,
                            inv_std);
}
inline void gelu(const float* x, float* y, std::int64_t n) {
  active_table().gelu(x, y, n);
}
inline void gelu_backward(const float* dy, const float* x, float* dx,
                          std::int64_t n) {
  active_table().gelu_backward(dy, x, dx, n);
}

// Implemented in kernels_scalar.cc (always) and kernels_avx2.cc (x86-64
// builds only; backend.cc falls back when the TU is absent).
const KernelTable& scalar_table();
#if defined(REBERT_HAVE_AVX2_BUILD)
const KernelTable& avx2_table();
#endif

}  // namespace rebert::kernels
