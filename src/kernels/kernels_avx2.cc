// AVX2+FMA backend. Compiled with -mavx2 -mfma in this TU only (see
// CMakeLists.txt); the rest of the binary stays plain x86-64 and
// backend.cc only dispatches here after a cpuid probe.
//
// GEMM is packed + register-blocked: B is repacked into 16-column panels
// (64-byte-aligned arena scratch, so the panel loads are aligned and the
// pack survives across the whole row sweep), and a templated MR x 16
// micro-kernel keeps MR rows of C in twelve YMM accumulators across the
// full k reduction. Tail columns run through the same kernel against a
// zero-padded panel and land via a staging row; tail rows drop to
// narrower MR instantiations. Everything is single-threaded and runs in
// one fixed order, so results are bit-identical run-to-run and across
// thread counts (the determinism contract in backend.h).
//
// Transcendentals (softmax's exp, GELU's erf/pdf) use Cephes-style
// polynomial approximations (~1e-7 relative error, inside the documented
// parity tolerance). Non-finite inputs take the scalar backend's exact
// code path — a softmax row containing NaN/Inf, or a NaN/Inf GELU lane,
// is recomputed with std::exp/std::erf — so NaN/Inf poisoning is
// bit-compatible with the scalar backend and the graphcheck tripwire
// fires identically under both.
#include <cmath>
#include <cstring>

#include "kernels/arena.h"
#include "kernels/kernels.h"

#if defined(REBERT_HAVE_AVX2_BUILD)

#include <immintrin.h>

namespace rebert::kernels {

namespace {

constexpr int kNR = 16;  // panel width: two YMM vectors
constexpr int kMR = 6;   // rows per micro-kernel: 12 accumulators

// ---- small helpers ---------------------------------------------------------

inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

/// Lane mask: 1-bits where the value is finite (not NaN, not +-Inf).
/// (x - x) == 0 exactly for finite x and is NaN otherwise.
inline int finite_mask8(__m256 v) {
  const __m256 diff = _mm256_sub_ps(v, v);
  const __m256 ok = _mm256_cmp_ps(diff, _mm256_setzero_ps(), _CMP_EQ_OQ);
  return _mm256_movemask_ps(ok);
}

inline bool all_finite(const float* x, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8)
    if (finite_mask8(_mm256_loadu_ps(x + i)) != 0xFF) return false;
  for (; i < n; ++i)
    if (!std::isfinite(x[i])) return false;
  return true;
}

/// Cephes-style expf on 8 lanes. Valid for finite inputs (callers route
/// non-finite data to the scalar path); ~1 ulp of error over the clamped
/// range [-88.37, 88.37].
inline __m256 exp8(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647949f);
  const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(x, hi);
  x = _mm256_max_ps(x, lo);

  __m256 fx = _mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);

  x = _mm256_fnmadd_ps(fx, c1, x);
  x = _mm256_fnmadd_ps(fx, c2, x);
  const __m256 xx = _mm256_mul_ps(x, x);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, xx, x);
  y = _mm256_add_ps(y, one);

  // y * 2^fx via the exponent field.
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i pow2 =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(0x7f)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
}

// ---- GEMM ------------------------------------------------------------------

/// B[k, n] columns [j0, j0+w) packed into a k x 16 panel (zero-padded to
/// 16), panel rows contiguous and 64-byte aligned.
void pack_b_panel(const float* b, int k, int n, int j0, int w,
                  float* panel) {
  for (int kk = 0; kk < k; ++kk) {
    const float* src = b + static_cast<std::size_t>(kk) * n + j0;
    float* dst = panel + static_cast<std::size_t>(kk) * kNR;
    int j = 0;
    for (; j < w; ++j) dst[j] = src[j];
    for (; j < kNR; ++j) dst[j] = 0.0f;
  }
}

/// A rows [i0, i0+h) packed kk-major, zero-padded to kMR rows:
/// ap[kk*kMR + r] = A[i0+r, kk]. The inner kernel then broadcasts from
/// one sequential stream instead of six strided row pointers — the
/// latter costs six extra address registers and spills the accumulators.
void pack_a_strip(const float* a, int lda, int h, int k, float* ap) {
  for (int kk = 0; kk < k; ++kk) {
    float* dst = ap + static_cast<std::size_t>(kk) * kMR;
    for (int r = 0; r < h; ++r)
      dst[r] = a[static_cast<std::size_t>(r) * lda + kk];
    for (int r = h; r < kMR; ++r) dst[r] = 0.0f;
  }
}

/// 6 x 16 register-blocked inner kernel: C[0..h, 0..w) = packed A strip *
/// panel. Always computes the full 6 rows (tail strips are zero-padded)
/// and stores only `h` of them. The twelve accumulators are individually
/// named — an `__m256 acc[6]` array defeats GCC's scalar replacement and
/// spills every accumulator to the stack each iteration, which costs
/// roughly half the kernel's throughput.
void gemm_kernel(const float* ap, const float* panel, float* c, int ldc,
                 int h, int k, int w) {
  __m256 c0a = _mm256_setzero_ps(), c0b = _mm256_setzero_ps();
  __m256 c1a = _mm256_setzero_ps(), c1b = _mm256_setzero_ps();
  __m256 c2a = _mm256_setzero_ps(), c2b = _mm256_setzero_ps();
  __m256 c3a = _mm256_setzero_ps(), c3b = _mm256_setzero_ps();
  __m256 c4a = _mm256_setzero_ps(), c4b = _mm256_setzero_ps();
  __m256 c5a = _mm256_setzero_ps(), c5b = _mm256_setzero_ps();
  const float* prow = panel;
  const float* arow = ap;
  for (int kk = 0; kk < k; ++kk, prow += kNR, arow += kMR) {
    const __m256 b0 = _mm256_load_ps(prow);
    const __m256 b1 = _mm256_load_ps(prow + 8);
    __m256 av = _mm256_broadcast_ss(arow + 0);
    c0a = _mm256_fmadd_ps(av, b0, c0a);
    c0b = _mm256_fmadd_ps(av, b1, c0b);
    av = _mm256_broadcast_ss(arow + 1);
    c1a = _mm256_fmadd_ps(av, b0, c1a);
    c1b = _mm256_fmadd_ps(av, b1, c1b);
    av = _mm256_broadcast_ss(arow + 2);
    c2a = _mm256_fmadd_ps(av, b0, c2a);
    c2b = _mm256_fmadd_ps(av, b1, c2b);
    av = _mm256_broadcast_ss(arow + 3);
    c3a = _mm256_fmadd_ps(av, b0, c3a);
    c3b = _mm256_fmadd_ps(av, b1, c3b);
    av = _mm256_broadcast_ss(arow + 4);
    c4a = _mm256_fmadd_ps(av, b0, c4a);
    c4b = _mm256_fmadd_ps(av, b1, c4b);
    av = _mm256_broadcast_ss(arow + 5);
    c5a = _mm256_fmadd_ps(av, b0, c5a);
    c5b = _mm256_fmadd_ps(av, b1, c5b);
  }
  const __m256 acc0[kMR] = {c0a, c1a, c2a, c3a, c4a, c5a};
  const __m256 acc1[kMR] = {c0b, c1b, c2b, c3b, c4b, c5b};
  if (w == kNR) {
    for (int r = 0; r < h; ++r) {
      float* crow = c + static_cast<std::size_t>(r) * ldc;
      _mm256_storeu_ps(crow, acc0[r]);
      _mm256_storeu_ps(crow + 8, acc1[r]);
    }
  } else {
    alignas(32) float stage[kNR];
    for (int r = 0; r < h; ++r) {
      _mm256_store_ps(stage, acc0[r]);
      _mm256_store_ps(stage + 8, acc1[r]);
      std::memcpy(c + static_cast<std::size_t>(r) * ldc, stage,
                  static_cast<std::size_t>(w) * sizeof(float));
    }
  }
}

void avx2_gemm(const float* a, const float* b, float* c, int m, int k,
               int n) {
  ArenaScope scratch;
  // A packed once into kMR-row strips, reused across every B panel.
  const int strips = (m + kMR - 1) / kMR;
  const std::size_t strip_floats = static_cast<std::size_t>(k) * kMR;
  float* apack = scratch.floats(static_cast<std::size_t>(strips) *
                                strip_floats);
  for (int s = 0; s < strips; ++s)
    pack_a_strip(a + static_cast<std::size_t>(s) * kMR * k, k,
                 std::min(kMR, m - s * kMR), k, apack + s * strip_floats);
  float* panel = scratch.floats(static_cast<std::size_t>(k) * kNR);
  for (int j0 = 0; j0 < n; j0 += kNR) {
    const int w = std::min(kNR, n - j0);
    pack_b_panel(b, k, n, j0, w, panel);
    for (int s = 0; s < strips; ++s)
      gemm_kernel(apack + s * strip_floats, panel,
                  c + static_cast<std::size_t>(s) * kMR * n + j0, n,
                  std::min(kMR, m - s * kMR), k, w);
  }
}

void avx2_gemm_tn(const float* a, const float* b, float* c, int m, int k,
                  int n) {
  // C[k,n] = A^T B as a sum of rank-1 updates, with the row axpy
  // vectorized: crow += a[i,kk] * brow. Same accumulation order as the
  // scalar backend, so parity is pure FMA-contraction noise.
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(k) * n; ++i)
    c[i] = 0.0f;
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    const float* brow = b + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const __m256 av = _mm256_broadcast_ss(arow + kk);
      float* crow = c + static_cast<std::size_t>(kk) * n;
      int j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 cv = _mm256_loadu_ps(crow + j);
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j), cv));
      }
      const float afs = arow[kk];
      for (; j < n; ++j) crow[j] += afs * brow[j];
    }
  }
}

void avx2_gemm_nt(const float* a, const float* b, float* c, int m, int k,
                  int n) {
  // Dot-product form; 4 output columns at a time share one load of the A
  // chunk.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + static_cast<std::size_t>(j) * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
      int kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        const __m256 av = _mm256_loadu_ps(arow + kk);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + kk), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + kk), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + kk), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + kk), acc3);
      }
      float s0 = hsum8(acc0), s1 = hsum8(acc1);
      float s2 = hsum8(acc2), s3 = hsum8(acc3);
      for (; kk < k; ++kk) {
        const float av = arow[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      crow[j] = s0;
      crow[j + 1] = s1;
      crow[j + 2] = s2;
      crow[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      __m256 acc = _mm256_setzero_ps();
      int kk = 0;
      for (; kk + 8 <= k; kk += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                              _mm256_loadu_ps(brow + kk), acc);
      float s = hsum8(acc);
      for (; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] = s;
    }
  }
}

// ---- elementwise -----------------------------------------------------------

void avx2_add_row_bias(float* x, const float* bias, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    float* row = x + static_cast<std::size_t>(i) * cols;
    int j = 0;
    for (; j + 8 <= cols; j += 8)
      _mm256_storeu_ps(row + j, _mm256_add_ps(_mm256_loadu_ps(row + j),
                                              _mm256_loadu_ps(bias + j)));
    for (; j < cols; ++j) row[j] += bias[j];
  }
}

void avx2_axpy(float* y, const float* x, float alpha, std::int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i)));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void avx2_scale(float* x, float alpha, std::int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(x + i, _mm256_mul_ps(av, _mm256_loadu_ps(x + i)));
  for (; i < n; ++i) x[i] *= alpha;
}

// ---- softmax ---------------------------------------------------------------

/// Exact scalar-backend row softmax, for rows with non-finite entries.
void softmax_row_scalar(float* row, int cols) {
  float row_max = row[0];
  for (int j = 1; j < cols; ++j) row_max = std::max(row_max, row[j]);
  float total = 0.0f;
  for (int j = 0; j < cols; ++j) {
    const float e = std::exp(row[j] - row_max);
    row[j] = e;
    total += e;
  }
  const float inv = 1.0f / total;
  for (int j = 0; j < cols; ++j) row[j] *= inv;
}

void avx2_softmax_rows(float* x, int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    float* row = x + static_cast<std::size_t>(i) * cols;
    if (!all_finite(row, cols)) {
      // NaN / +-Inf rows poison exactly like the scalar backend.
      softmax_row_scalar(row, cols);
      continue;
    }
    // Fused pass structure: vector max, then exp+accumulate, then scale.
    __m256 vmax = _mm256_set1_ps(row[0]);
    int j = 0;
    for (; j + 8 <= cols; j += 8)
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + j));
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmax);
    float row_max = lanes[0];
    for (int l = 1; l < 8; ++l) row_max = std::max(row_max, lanes[l]);
    for (; j < cols; ++j) row_max = std::max(row_max, row[j]);

    const __m256 vm = _mm256_set1_ps(row_max);
    j = 0;
    for (; j + 8 <= cols; j += 8)
      _mm256_storeu_ps(row + j,
                       exp8(_mm256_sub_ps(_mm256_loadu_ps(row + j), vm)));
    for (; j < cols; ++j) row[j] = std::exp(row[j] - row_max);
    // The total accumulates scalar, left to right, NOT as a vector
    // reduction: in-order summation makes the result independent of how
    // the row length falls against the vector width, which preserves the
    // masking invariant (a padded row whose masked tail underflows to ~0
    // sums to the same total as the unpadded row) that the bert masking
    // tests pin down. exp dominates this loop; the scalar sum is noise.
    float total = 0.0f;
    for (int jj = 0; jj < cols; ++jj) total += row[jj];
    const float inv = 1.0f / total;
    avx2_scale(row, inv, cols);
  }
}

void avx2_softmax_rows_backward(const float* dy, const float* y, float* dx,
                                int rows, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* dyr = dy + static_cast<std::size_t>(i) * cols;
    const float* yr = y + static_cast<std::size_t>(i) * cols;
    float* dxr = dx + static_cast<std::size_t>(i) * cols;
    __m256 vdot = _mm256_setzero_ps();
    int j = 0;
    for (; j + 8 <= cols; j += 8)
      vdot = _mm256_fmadd_ps(_mm256_loadu_ps(dyr + j),
                             _mm256_loadu_ps(yr + j), vdot);
    float dot = hsum8(vdot);
    for (; j < cols; ++j) dot += dyr[j] * yr[j];
    const __m256 vd = _mm256_set1_ps(dot);
    j = 0;
    for (; j + 8 <= cols; j += 8) {
      const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(dyr + j), vd);
      _mm256_storeu_ps(dxr + j, _mm256_mul_ps(_mm256_loadu_ps(yr + j), d));
    }
    for (; j < cols; ++j) dxr[j] = yr[j] * (dyr[j] - dot);
  }
}

// ---- LayerNorm -------------------------------------------------------------

void avx2_layer_norm(const float* x, const float* gamma, const float* beta,
                     float eps, int rows, int cols, float* y,
                     float* normalized, float* inv_std) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<std::size_t>(i) * cols;
    float* yr = y + static_cast<std::size_t>(i) * cols;
    // Pass 1: mean (vector accumulate + tail). NaN/Inf propagate through
    // the adds and poison the whole row, matching the scalar backend.
    __m256 vsum = _mm256_setzero_ps();
    int j = 0;
    for (; j + 8 <= cols; j += 8)
      vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(xr + j));
    float sum = hsum8(vsum);
    for (; j < cols; ++j) sum += xr[j];
    const float mean = sum / static_cast<float>(cols);

    // Pass 2: variance of (x - mean).
    const __m256 vmean = _mm256_set1_ps(mean);
    __m256 vvar = _mm256_setzero_ps();
    j = 0;
    for (; j + 8 <= cols; j += 8) {
      const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(xr + j), vmean);
      vvar = _mm256_fmadd_ps(d, d, vvar);
    }
    float var = hsum8(vvar);
    for (; j < cols; ++j) {
      const float d = xr[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float istd = 1.0f / std::sqrt(var + eps);
    if (inv_std) inv_std[i] = istd;

    // Pass 3: y = (x - mean) * istd * gamma + beta (and the normalized
    // intermediate when the caller needs it for backward).
    float* nr = normalized
                    ? normalized + static_cast<std::size_t>(i) * cols
                    : nullptr;
    const __m256 vistd = _mm256_set1_ps(istd);
    j = 0;
    for (; j + 8 <= cols; j += 8) {
      const __m256 nrm = _mm256_mul_ps(
          _mm256_sub_ps(_mm256_loadu_ps(xr + j), vmean), vistd);
      if (nr) _mm256_storeu_ps(nr + j, nrm);
      _mm256_storeu_ps(
          yr + j, _mm256_fmadd_ps(nrm, _mm256_loadu_ps(gamma + j),
                                  _mm256_loadu_ps(beta + j)));
    }
    for (; j < cols; ++j) {
      const float nrm = (xr[j] - mean) * istd;
      if (nr) nr[j] = nrm;
      yr[j] = nrm * gamma[j] + beta[j];
    }
  }
}

// ---- GELU ------------------------------------------------------------------

inline float scalar_norm_cdf(float x) {
  return 0.5f * (1.0f + std::erf(x * 0.70710678118654752440f));
}
inline float scalar_norm_pdf(float x) {
  return 0.39894228040143267794f * std::exp(-0.5f * x * x);
}

/// Vector Phi(x) via the Abramowitz & Stegun 7.1.26 erf polynomial
/// (|error| < 1.5e-7, well inside kParityAtol). Finite lanes only.
inline __m256 norm_cdf8(__m256 x) {
  const __m256 inv_sqrt2 = _mm256_set1_ps(0.70710678118654752440f);
  const __m256 z = _mm256_mul_ps(x, inv_sqrt2);
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 az = _mm256_andnot_ps(sign_bit, z);  // |z|
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 t = _mm256_div_ps(
      one, _mm256_fmadd_ps(_mm256_set1_ps(0.3275911f), az, one));
  __m256 poly = _mm256_set1_ps(1.061405429f);
  poly = _mm256_fmadd_ps(poly, t, _mm256_set1_ps(-1.453152027f));
  poly = _mm256_fmadd_ps(poly, t, _mm256_set1_ps(1.421413741f));
  poly = _mm256_fmadd_ps(poly, t, _mm256_set1_ps(-0.284496736f));
  poly = _mm256_fmadd_ps(poly, t, _mm256_set1_ps(0.254829592f));
  poly = _mm256_mul_ps(poly, t);
  const __m256 e =
      exp8(_mm256_sub_ps(_mm256_setzero_ps(), _mm256_mul_ps(az, az)));
  const __m256 erf_abs = _mm256_fnmadd_ps(poly, e, one);  // 1 - poly*e
  // Restore sign: erf(-z) = -erf(z).
  const __m256 zsign = _mm256_and_ps(z, sign_bit);
  const __m256 erf = _mm256_or_ps(erf_abs, zsign);
  return _mm256_mul_ps(_mm256_set1_ps(0.5f), _mm256_add_ps(one, erf));
}

void avx2_gelu(const float* x, float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    if (finite_mask8(xv) != 0xFF) {
      // Non-finite lanes reuse the scalar backend's exact formula.
      for (int l = 0; l < 8; ++l)
        y[i + l] = x[i + l] * scalar_norm_cdf(x[i + l]);
      continue;
    }
    _mm256_storeu_ps(y + i, _mm256_mul_ps(xv, norm_cdf8(xv)));
  }
  for (; i < n; ++i) y[i] = x[i] * scalar_norm_cdf(x[i]);
}

void avx2_gelu_backward(const float* dy, const float* x, float* dx,
                        std::int64_t n) {
  const __m256 neg_half = _mm256_set1_ps(-0.5f);
  const __m256 inv_sqrt_2pi = _mm256_set1_ps(0.39894228040143267794f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    if (finite_mask8(xv) != 0xFF) {
      for (int l = 0; l < 8; ++l) {
        const float g = scalar_norm_cdf(x[i + l]) +
                        x[i + l] * scalar_norm_pdf(x[i + l]);
        dx[i + l] = dy[i + l] * g;
      }
      continue;
    }
    const __m256 cdf = norm_cdf8(xv);
    const __m256 pdf = _mm256_mul_ps(
        inv_sqrt_2pi,
        exp8(_mm256_mul_ps(neg_half, _mm256_mul_ps(xv, xv))));
    const __m256 g = _mm256_fmadd_ps(xv, pdf, cdf);
    _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(dy + i), g));
  }
  for (; i < n; ++i) {
    const float g =
        scalar_norm_cdf(x[i]) + x[i] * scalar_norm_pdf(x[i]);
    dx[i] = dy[i] * g;
  }
}

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable table{
      avx2_gemm,
      avx2_gemm_tn,
      avx2_gemm_nt,
      avx2_add_row_bias,
      avx2_axpy,
      avx2_scale,
      avx2_softmax_rows,
      avx2_softmax_rows_backward,
      avx2_layer_norm,
      avx2_gelu,
      avx2_gelu_backward,
  };
  return table;
}

}  // namespace rebert::kernels

#endif  // REBERT_HAVE_AVX2_BUILD
