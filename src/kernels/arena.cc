#include "kernels/arena.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "kernels/aligned.h"
#include "util/check.h"

namespace rebert::kernels {

namespace {

/// First block size: covers a whole encoder-layer forward at the default
/// eval config without growing.
constexpr std::size_t kMinBlockBytes = 1u << 16;  // 64 KiB

std::size_t round_up(std::size_t bytes) {
  return (bytes + kAlignment - 1) & ~(kAlignment - 1);
}

#if defined(REBERT_ENABLE_DCHECKS)
/// Debug poison: a use-after-rewind reads NaNs and trips the graphcheck
/// tripwire instead of silently reusing stale values.
void poison(char* base, std::size_t from, std::size_t to) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  float* f = reinterpret_cast<float*>(base);
  for (std::size_t i = from / sizeof(float); i < to / sizeof(float); ++i)
    f[i] = nan;
}
#endif

}  // namespace

void* Arena::alloc_bytes(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, 1));
  // Try the current block, then any later (already-reserved) block a
  // previous high-water mark left behind.
  while (current_ < blocks_.size()) {
    Block& block = blocks_[current_];
    if (block.capacity - block.used >= bytes) {
      char* p = block.base + block.used;
      block.used += bytes;
      return p;
    }
    if (current_ + 1 >= blocks_.size()) break;
    ++current_;
  }
  Block& block = grow(bytes);
  char* p = block.base + block.used;
  block.used += bytes;
  return p;
}

Arena::Block& Arena::grow(std::size_t min_bytes) {
  // Geometric growth, and at least the sum of everything already
  // reserved: after a full rewind the next generation consolidates the
  // whole working set into one block.
  std::size_t want = std::max(min_bytes, kMinBlockBytes);
  want = std::max(want, capacity());
  want = round_up(want);
  Block block;
  const std::size_t floats = want / sizeof(float) + kAlignment / sizeof(float);
  block.storage = std::make_unique<float[]>(floats);
  auto addr = reinterpret_cast<std::uintptr_t>(block.storage.get());
  const std::uintptr_t aligned = (addr + kAlignment - 1) & ~(kAlignment - 1);
  block.base = reinterpret_cast<char*>(aligned);
  block.capacity = want;
  block.used = 0;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  return blocks_.back();
}

void Arena::rewind(const Mark& mark) {
  if (blocks_.empty()) return;
  REBERT_DCHECK_MSG(mark.block < blocks_.size(),
                    "arena rewind past the end of the block list");
  for (std::size_t b = blocks_.size(); b-- > mark.block + 1;) {
#if defined(REBERT_ENABLE_DCHECKS)
    poison(blocks_[b].base, 0, blocks_[b].used);
#endif
    blocks_[b].used = 0;
  }
#if defined(REBERT_ENABLE_DCHECKS)
  poison(blocks_[mark.block].base, mark.used, blocks_[mark.block].used);
#endif
  blocks_[mark.block].used = mark.used;
  current_ = mark.block;
  // Full rewind with a fragmented block list: drop every block so the
  // next grow() reserves one consolidated block (capacity() feeds the
  // sizing above via the high-water sum we are about to release —
  // compute it first).
  if (mark.block == 0 && mark.used == 0 && blocks_.size() > 1) {
    const std::size_t total = capacity();
    blocks_.clear();
    current_ = 0;
    Block& block = grow(total);
    block.used = 0;
  }
}

std::size_t Arena::bytes_in_use() const {
  std::size_t used = 0;
  for (const Block& block : blocks_) used += block.used;
  return used;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return total;
}

Arena& thread_arena() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace rebert::kernels
