#include "kernels/backend.h"

#include <atomic>

#include "kernels/kernels.h"
#include "util/env.h"
#include "util/logging.h"

namespace rebert::kernels {

namespace {

/// The dispatch state: the active backend enum (for reporting) and the
/// table pointer every dispatched call loads. Written together by
/// set_backend; readers only need each value individually, so two relaxed
/// atomics are enough (a racing reader sees one backend or the other,
/// both valid tables).
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<Backend> g_backend{Backend::kScalar};

bool cpu_has_avx2_fma() {
#if defined(REBERT_HAVE_AVX2_BUILD) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Backend best_available() {
  return cpu_has_avx2_fma() ? Backend::kAvx2 : Backend::kScalar;
}

void store_backend(Backend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
  g_table.store(&table_for(backend), std::memory_order_release);
}

/// One-time resolution of REBERT_KERNELS on first dispatch. Not
/// std::call_once: a benign race here just resolves the same environment
/// twice to the same answer.
const KernelTable* init_from_env() {
  const std::string spec = util::env_string("REBERT_KERNELS", "auto");
  Backend backend = best_available();
  std::string error;
  if (!parse_backend_spec(spec, &backend, &error)) {
    LOG_WARN << "REBERT_KERNELS=" << spec << " is invalid (" << error
             << "); using " << backend_name(best_available());
    backend = best_available();
  }
  store_backend(backend);
  return g_table.load(std::memory_order_acquire);
}

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
  }
  return "unknown";
}

bool avx2_available() { return cpu_has_avx2_fma(); }

bool backend_available(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return true;
    case Backend::kAvx2: return avx2_available();
  }
  return false;
}

const KernelTable& table_for(Backend backend) {
#if defined(REBERT_HAVE_AVX2_BUILD)
  if (backend == Backend::kAvx2 && avx2_available()) return avx2_table();
#else
  (void)backend;
#endif
  return scalar_table();
}

const KernelTable& active_table() {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) table = init_from_env();
  return *table;
}

Backend active_backend() {
  // Force first-use resolution so the reported name matches dispatch.
  (void)active_table();
  return g_backend.load(std::memory_order_relaxed);
}

void set_backend(Backend backend) {
  if (!backend_available(backend)) {
    LOG_WARN << "kernels backend " << backend_name(backend)
             << " unavailable on this CPU; falling back to scalar";
    backend = Backend::kScalar;
  }
  store_backend(backend);
}

bool parse_backend_spec(const std::string& spec, Backend* out,
                        std::string* error) {
  if (spec.empty() || spec == "auto") {
    *out = best_available();
    return true;
  }
  if (spec == "scalar") {
    *out = Backend::kScalar;
    return true;
  }
  if (spec == "avx2") {
    if (avx2_available()) {
      *out = Backend::kAvx2;
    } else {
      LOG_WARN << "kernels backend avx2 unavailable on this CPU; "
                  "falling back to scalar";
      *out = Backend::kScalar;
    }
    return true;
  }
  if (error) *error = "expected auto, scalar, or avx2";
  return false;
}

bool apply_backend_spec(const std::string& spec, std::string* error) {
  Backend backend = Backend::kScalar;
  if (!parse_backend_spec(spec, &backend, error)) return false;
  store_backend(backend);
  return true;
}

}  // namespace rebert::kernels
