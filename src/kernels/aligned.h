// 64-byte-aligned allocation for SIMD-visible float storage.
//
// std::vector<float>'s default allocator guarantees only alignof(float);
// the AVX2 kernels want (and the future AVX-512 path will require) cache-
// line alignment so aligned loads are legal on tensor row 0 and packing
// stays cheap. AlignedAllocator is a drop-in std::allocator replacement
// built on C++17 aligned operator new, used by tensor::Tensor and the
// scratch Arena. The alignment is a type-level constant so two vectors
// with different alignments can never be spliced together silently.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace rebert::kernels {

/// Every SIMD-visible buffer in the process is aligned to this many bytes:
/// one cache line, and enough for 512-bit vectors.
inline constexpr std::size_t kAlignment = 64;

template <typename T, std::size_t Alignment = kAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// The storage type behind tensor::Tensor: contiguous floats whose data()
/// is 64-byte aligned (asserted by tests/tensor/tensor_test.cc).
using AlignedFloatVector = std::vector<float, AlignedAllocator<float>>;

}  // namespace rebert::kernels
