// Per-thread scratch arena: bump allocation for hot-loop temporaries.
//
// The BERT forward pass used to allocate dozens of short-lived buffers
// per call — per-head Q/K/V slices, attention score matrices, GEMM
// packing panels, LayerNorm intermediates. Arena replaces all of that
// with a thread-local bump allocator: ArenaScope marks the high-water
// point on entry and rewinds it on exit, so a whole encoder forward costs
// zero heap traffic once the arena has grown to the working-set size.
//
// Thread safety: there is none, by construction — thread_arena() hands
// every thread its own instance and Arena itself is deliberately
// lock-free-because-single-threaded. It therefore sits entirely outside
// the PR 6 lock hierarchy (no util::Mutex, no acquisition edges, nothing
// for the lock-order registry to see) and may be used while holding any
// lock. tools/check_annotations.sh enforces that ad-hoc `thread_local`
// state does not appear elsewhere, so this file stays the one sanctioned
// per-thread scratch mechanism.
//
// Nesting: scopes nest like stack frames (attention's scope survives the
// gemm packing scope it calls into). Allocations made inside a scope are
// invalid after the scope is destroyed; holding an arena pointer across
// a scope boundary is the one way to misuse this API, and the debug
// build's poison fill (REBERT_ENABLE_DCHECKS) makes such bugs loud.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace rebert::kernels {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 64-byte-aligned uninitialized floats, valid until the enclosing
  /// scope rewinds. n == 0 returns a non-null dummy pointer.
  float* alloc_floats(std::size_t n) {
    return static_cast<float*>(alloc_bytes(n * sizeof(float)));
  }

  /// 64-byte-aligned uninitialized storage.
  void* alloc_bytes(std::size_t bytes);

  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };
  Mark mark() const { return Mark{current_, blocks_.empty() ? 0 : blocks_[current_].used}; }
  void rewind(const Mark& mark);

  /// Bytes handed out since the last full rewind (diagnostics/tests).
  std::size_t bytes_in_use() const;
  /// Total bytes reserved across all blocks.
  std::size_t capacity() const;
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<float[]> storage;  // overallocated for manual alignment
    char* base = nullptr;              // 64-byte-aligned start
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  Block& grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // block new allocations try first
};

/// This thread's arena. First call on a thread creates it; it lives until
/// thread exit. Pool workers (runtime::ThreadPool) each get their own, so
/// concurrent forwards never share scratch.
Arena& thread_arena();

/// RAII watermark over thread_arena(): everything allocated through the
/// scope (or from thread_arena() while it is open) is reclaimed — not
/// freed, kept for reuse — when it destructs.
class ArenaScope {
 public:
  ArenaScope() : arena_(thread_arena()), mark_(arena_.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  float* floats(std::size_t n) { return arena_.alloc_floats(n); }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace rebert::kernels
