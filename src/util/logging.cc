#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"
#include "util/string_utils.h"

namespace rebert::util {

namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("REBERT_LOG_LEVEL"))
      return parse_log_level(env);
    return LogLevel::kInfo;
  }();
  return level;
}

// Constant-initialized (constexpr ctor), so logging during any other TU's
// dynamic initialization is already serialized. util.log is the innermost
// lock in the hierarchy: emit_log acquires nothing else, and several
// subsystems log while holding their own lock (see DESIGN.md).
constinit Mutex g_log_mu("util.log");

Mutex& log_mutex() RETURN_CAPABILITY(g_log_mu) { return g_log_mu; }

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "trace") return LogLevel::kTrace;
  if (n == "debug") return LogLevel::kDebug;
  if (n == "info") return LogLevel::kInfo;
  if (n == "warn" || n == "warning") return LogLevel::kWarn;
  if (n == "error") return LogLevel::kError;
  if (n == "off" || n == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void emit_log(LogLevel level, const std::string& message) {
  MutexLock lock(log_mutex());
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}

}  // namespace detail

}  // namespace rebert::util
