#include "util/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace rebert::util {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool parse_int(std::string_view s, int* value) {
  if (s.empty()) return false;
  const std::string buf(s);  // strtol needs a NUL terminator
  // strtol itself skips leading whitespace; a strict parse must not.
  if (std::isspace(static_cast<unsigned char>(buf.front()))) return false;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || end == buf.c_str()) return false;
  if (errno == ERANGE || parsed < std::numeric_limits<int>::min() ||
      parsed > std::numeric_limits<int>::max())
    return false;
  if (value) *value = static_cast<int>(parsed);
  return true;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

namespace {

// strerror_r has two signatures — XSI returns int (0 = message in buf),
// GNU returns char* (may point at its own static text). Overloading on
// the result type accepts whichever this libc provides.
[[maybe_unused]] const char* strerror_result(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* strerror_result(const char* message,
                                             const char* /*buf*/) {
  return message != nullptr ? message : "unknown error";
}

}  // namespace

std::string errno_string(int err) {
  char buf[256] = {};
  return strerror_result(::strerror_r(err, buf, sizeof(buf)), buf);
}

}  // namespace rebert::util
