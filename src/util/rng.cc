#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace rebert::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  REBERT_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::uniform_int(int lo, int hi) {
  REBERT_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
  return lo + static_cast<int>(uniform_u64(span));
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  REBERT_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    REBERT_CHECK_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  REBERT_CHECK_MSG(total > 0.0, "all weights zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace rebert::util
