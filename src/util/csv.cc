#include "util/csv.h"

#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), columns_(header.size()) {
  REBERT_CHECK_MSG(out_.good(), "cannot open CSV file " << path);
  REBERT_CHECK(!header.empty());
  std::vector<std::string> escaped;
  escaped.reserve(header.size());
  for (const auto& h : header) escaped.push_back(escape(h));
  out_ << join(escaped, ",") << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  REBERT_CHECK_MSG(cells.size() == columns_,
                   "CSV row width " << cells.size() << " != " << columns_);
  std::vector<std::string> escaped;
  escaped.reserve(cells.size());
  for (const auto& c : cells) escaped.push_back(escape(c));
  out_ << join(escaped, ",") << '\n';
  out_.flush();
}

void CsvWriter::add_row_numeric(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(cells);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace rebert::util
