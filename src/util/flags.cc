#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::util {

FlagParser::FlagParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

FlagParser::FlagParser(const std::vector<std::string>& args) { parse(args); }

void FlagParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    REBERT_CHECK_MSG(!name.empty(), "bare '--' is not a flag");
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      flags_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another flag (or absent):
    // then it is a bare boolean.
    if (i + 1 < args.size() && !starts_with(args[i + 1], "--")) {
      flags_[name] = args[i + 1];
      ++i;
    } else {
      flags_[name] = "";
    }
  }
}

bool FlagParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::get(const std::string& name,
                            const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

int FlagParser::get_int(const std::string& name, int fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  REBERT_CHECK_MSG(end && *end == '\0',
                   "flag --" << name << " expects an integer, got '"
                             << it->second << "'");
  return static_cast<int>(value);
}

double FlagParser::get_double(const std::string& name,
                              double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  REBERT_CHECK_MSG(end && *end == '\0',
                   "flag --" << name << " expects a number, got '"
                             << it->second << "'");
  return value;
}

bool FlagParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty()) return true;  // bare --flag
  const std::string v = to_lower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> FlagParser::unknown_flags(
    const std::vector<std::string>& allowed) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string& candidate : allowed)
      if (candidate == name) {
        found = true;
        break;
      }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace rebert::util
