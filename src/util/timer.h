// Wall-clock timing used by the runtime experiments (Table III) and benches.
#pragma once

#include <chrono>
#include <string>

namespace rebert::util {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across start/stop intervals; used to separate
/// e.g. tokenization time from model time inside one pipeline run.
class AccumulatingTimer {
 public:
  void start() {
    running_ = true;
    timer_.reset();
  }

  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      running_ = false;
    }
  }

  double total_seconds() const {
    return total_ + (running_ ? timer_.seconds() : 0.0);
  }

  void reset() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

/// Logs elapsed time at destruction (info level).
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string label_;
  WallTimer timer_;
};

}  // namespace rebert::util
