#include "util/env.h"

#include <cstdlib>

#include "util/string_utils.h"

namespace rebert::util {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

bool env_bool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const std::string s = to_lower(v);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace rebert::util
