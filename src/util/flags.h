// Minimal command-line flag parsing for the CLI tools.
//
// Supports "--name value", "--name=value", bare boolean "--name", and
// positional arguments (subcommands, file names). No registration step:
// callers query by name with a fallback, and can validate against an
// allow-list to catch typos.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rebert::util {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);
  explicit FlagParser(const std::vector<std::string>& args);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Bare "--flag" or "--flag true/1/yes" -> true.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Returns the flags present that are not in `allowed` (typo detection).
  std::vector<std::string> unknown_flags(
      const std::vector<std::string>& allowed) const;

 private:
  void parse(const std::vector<std::string>& args);

  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;  // name -> value ("" for bare)
};

}  // namespace rebert::util
