// Minimal leveled logger.
//
// Library code logs through this instead of writing to std::cerr directly so
// benchmarks and tests can silence or capture output. The default sink is
// stderr; severity is filtered by a process-wide level (settable via the
// REBERT_LOG_LEVEL environment variable: trace/debug/info/warn/error/off).
#pragma once

#include <sstream>
#include <string>

namespace rebert::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global severity threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "debug", "INFO", ... (unknown strings -> kInfo).
LogLevel parse_log_level(const std::string& name);

const char* log_level_name(LogLevel level);

namespace detail {
void emit_log(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit_log(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rebert::util

#define REBERT_LOG(level)                                            \
  if (::rebert::util::LogLevel::level < ::rebert::util::log_level()) \
    ;                                                                \
  else                                                               \
    ::rebert::util::detail::LogLine(::rebert::util::LogLevel::level)

#define LOG_TRACE REBERT_LOG(kTrace)
#define LOG_DEBUG REBERT_LOG(kDebug)
#define LOG_INFO REBERT_LOG(kInfo)
#define LOG_WARN REBERT_LOG(kWarn)
#define LOG_ERROR REBERT_LOG(kError)
