// Environment-variable knobs for the experiment harnesses.
//
// The Table II/III benches train a model under leave-one-out CV, which is
// expensive; these helpers let a user scale the sweeps up or down
// (REBERT_EPOCHS, REBERT_MAX_PAIRS, ...) without recompiling.
#pragma once

#include <string>

namespace rebert::util {

/// Integer environment variable with fallback (also returns the fallback on
/// a malformed value).
int env_int(const char* name, int fallback);

/// Double environment variable with fallback.
double env_double(const char* name, double fallback);

/// String environment variable with fallback.
std::string env_string(const char* name, const std::string& fallback);

/// Boolean: "1", "true", "yes", "on" (case-insensitive) are true.
bool env_bool(const char* name, bool fallback);

}  // namespace rebert::util
