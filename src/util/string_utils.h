// Small string helpers shared across parsers, table printers, and loaders.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rebert::util {

/// Strip ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Split on a delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any run of whitespace; drops empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

/// Fixed-precision formatting, e.g. format_double(0.12345, 3) == "0.123".
std::string format_double(double value, int precision);

/// Strict base-10 integer parse of the whole string (optional sign, no
/// leading/trailing junk, must fit in int). Returns false instead of
/// throwing — what parsers want when malformed input ("[x:0]", an
/// overflow-sized index) must become a located diagnostic, not an
/// uncaught std::invalid_argument.
bool parse_int(std::string_view s, int* value);

/// Thread-safe strerror: the message for `err` via strerror_r.
/// std::strerror may return a pointer into a shared static buffer
/// (concurrency-mt-unsafe), and every caller in the tree formats errno
/// from multi-threaded code — connection handlers, snapshot writers.
std::string errno_string(int err);

}  // namespace rebert::util
