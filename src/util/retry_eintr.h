// EINTR retry for POSIX syscalls that return -1/errno.
//
// A signal (the profiler's SIGPROF, a SIGTERM racing shutdown, a debugger
// attach) interrupting a blocking syscall must never be treated as a real
// I/O failure. Every raw read/accept/send/connect in the tree goes through
// this one helper instead of a hand-rolled do/while per call site, so the
// retry policy cannot drift between them.
#pragma once

#include <cerrno>
#include <utility>

namespace rebert::util {

/// Invoke `fn` (a callable wrapping one syscall, returning int or ssize_t)
/// until it either succeeds or fails with something other than EINTR.
/// Returns the final result; errno is left as the syscall set it.
template <typename Fn>
auto retry_eintr(Fn&& fn) -> decltype(fn()) {
  for (;;) {
    const auto result = std::forward<Fn>(fn)();
    if (result >= 0 || errno != EINTR) return result;
  }
}

}  // namespace rebert::util
