// Aligned plain-text table rendering for the experiment harnesses.
//
// The Table I-III benches print rows in the same layout as the paper; this
// helper keeps column alignment without dragging in a formatting library.
#pragma once

#include <string>
#include <vector>

namespace rebert::util {

class TextTable {
 public:
  /// Column headers fix the column count; subsequent rows must match.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: doubles are formatted with the given precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }

  /// Render with a header separator, e.g.
  ///   name  | x     | y
  ///   ------+-------+-----
  ///   b03   | 0.653 | 0.728
  std::string to_string() const;

  /// Print to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rebert::util
