#include "util/table.h"

#include <cstdio>

#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  REBERT_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  REBERT_CHECK_MSG(cells.size() == headers_.size(),
                   "row has " << cells.size() << " cells, expected "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    return line;
  };

  std::string out = render_row(headers_);
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "-+-";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
    out += '\n';
  }
  return out;
}

void TextTable::print() const {
  std::fputs(to_string().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace rebert::util
