#include "util/mutex.h"

#ifdef REBERT_ENABLE_DCHECKS
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>
#endif

namespace rebert::util {

#ifdef REBERT_ENABLE_DCHECKS

namespace {

// ---- debug lock-order registry ---------------------------------------------
//
// A process-wide directed graph over lock *names*: edge A -> B means "some
// thread acquired B while holding A". Deadlock potential is a cycle in that
// graph — if A -> B and B -> A both exist, two threads can block each other
// even though neither run so far has. Recording edges on every blocking
// acquisition and aborting on the first cycle catches ABBA inversions on
// any interleaving, not just the unlucky one.
//
// The registry's own mutex is a raw std::mutex (the one permitted use
// outside the wrapper, together with the wrapped mu_ itself): it is a leaf
// — the registry never acquires anything else while holding it — and it
// must not be a rebert::Mutex, which would recurse into this very
// bookkeeping. Diagnostics go through fprintf, never LOG_*: the logging
// layer takes its own wrapped mutex, and the registry must stay below
// every lock in the hierarchy.

struct LockGraph {
  std::mutex mu;
  // edge from -> to, with a human-readable witness of the acquisition that
  // first recorded it ("<to> acquired while holding [<held...>]").
  std::map<std::string, std::map<std::string, std::string>> edges;
};

LockGraph& graph() {
  static LockGraph* g = new LockGraph();  // leaked: outlives static dtors
  return *g;
}

struct HeldEntry {
  const Mutex* mutex;
  const char* name;
};

// Acquisition stack of the current thread, outermost first.
thread_local std::vector<HeldEntry> t_held;

// Owner bookkeeping lives out-of-class so sizeof(Mutex) stays minimal and
// the release layout is untouched; keyed by instance address. Guarded by
// graph().mu.
std::map<const Mutex*, std::thread::id>& owners() {
  static auto* m = new std::map<const Mutex*, std::thread::id>();
  return *m;
}

std::string held_names() {
  std::string out = "[";
  for (std::size_t i = 0; i < t_held.size(); ++i) {
    if (i > 0) out += ", ";
    out += t_held[i].name;
  }
  out += "]";
  return out;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "rebert mutex: %s; aborting\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

/// Depth-first search for a path `from` ~> `to` in the edge map; fills
/// `path` with the node sequence when found. Caller holds graph().mu.
bool find_path(const std::map<std::string, std::map<std::string, std::string>>& edges,
               const std::string& from, const std::string& to,
               std::set<std::string>* visited,
               std::vector<std::string>* path) {
  if (!visited->insert(from).second) return false;
  path->push_back(from);
  if (from == to) return true;
  const auto it = edges.find(from);
  if (it != edges.end()) {
    for (const auto& [next, witness] : it->second) {
      (void)witness;
      if (find_path(edges, next, to, visited, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

/// Record held -> acquired edges for a blocking acquisition of `mu`,
/// aborting on the first cycle. Called after the real lock succeeded, so
/// the abort message can show a consistent held stack.
void record_ordering(const Mutex* mu) {
  if (t_held.empty()) return;
  const std::string acquired = mu->name();
  LockGraph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  const std::string witness =
      std::string(acquired) + " acquired while holding " + held_names();
  for (const HeldEntry& held : t_held) {
    const std::string from = held.name;
    if (from == acquired) continue;  // same-name pair aborts in on_acquire
    auto& out_edges = g.edges[from];
    if (out_edges.find(acquired) != out_edges.end()) continue;  // known
    // New edge from -> acquired: a cycle exists iff acquired ~> from
    // already. Report the reversed chain's witnesses — the "other stack".
    std::set<std::string> visited;
    std::vector<std::string> path;
    if (find_path(g.edges, acquired, from, &visited, &path)) {
      std::string reversed;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (i > 0) reversed += "; then ";
        reversed += g.edges[path[i]][path[i + 1]];
      }
      die("lock-order cycle: acquiring " + acquired + " while holding " +
          held_names() + "; reversed by earlier acquisition: " + reversed);
    }
    out_edges.emplace(acquired, witness);
  }
}

/// Held-stack and owner bookkeeping common to lock(), successful
/// try_lock(), and CondVar reacquisition. `blocking` gates edge recording:
/// try_lock never blocks, so it cannot contribute to a deadlock cycle.
void on_acquire(const Mutex* mu, bool blocking) {
  {
    LockGraph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    owners()[mu] = std::this_thread::get_id();
  }
  if (blocking) record_ordering(mu);
  t_held.push_back({mu, mu->name()});
}

void check_before_acquire(const Mutex* mu) {
  for (const HeldEntry& held : t_held) {
    if (held.mutex == mu)
      die(std::string("self-deadlock: thread re-acquiring ") + mu->name() +
          " it already holds " + held_names());
    // Two *instances* sharing a name (e.g. two cache shards) held together
    // have no defined order — the graph cannot tell them apart, and
    // neither could two threads taking them in opposite instance order.
    if (held.mutex != mu && std::string(held.name) == mu->name())
      die(std::string("lock-order hazard: acquiring a second '") +
          mu->name() + "' instance while one is already held " +
          held_names());
  }
}

void on_release(const Mutex* mu) {
  {
    LockGraph& g = graph();
    std::lock_guard<std::mutex> lock(g.mu);
    auto& owner_map = owners();
    const auto it = owner_map.find(mu);
    if (it == owner_map.end() || it->second != std::this_thread::get_id())
      die(std::string("non-owner unlock: thread releasing ") + mu->name() +
          " it does not hold " + held_names());
    owner_map.erase(it);
  }
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  die(std::string("non-owner unlock: ") + mu->name() +
      " missing from this thread's held stack " + held_names());
}

}  // namespace

void Mutex::lock() {
  check_before_acquire(this);
  mu_.lock();
  on_acquire(this, /*blocking=*/true);
}

bool Mutex::try_lock() {
  check_before_acquire(this);
  if (!mu_.try_lock()) return false;
  on_acquire(this, /*blocking=*/false);
  return true;
}

void Mutex::unlock() {
  on_release(this);
  mu_.unlock();
}

#endif  // REBERT_ENABLE_DCHECKS

void CondVar::wait(Mutex& mu) {
#ifdef REBERT_ENABLE_DCHECKS
  on_release(&mu);
#endif
  // Adopt the already-held native mutex so the std wait can release and
  // reacquire it; release() afterwards keeps ownership with the caller's
  // MutexLock.
  std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
#ifdef REBERT_ENABLE_DCHECKS
  on_acquire(&mu, /*blocking=*/true);
#endif
}

bool CondVar::wait_until(Mutex& mu,
                         std::chrono::steady_clock::time_point deadline) {
#ifdef REBERT_ENABLE_DCHECKS
  on_release(&mu);
#endif
  std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
  const std::cv_status status = cv_.wait_until(native, deadline);
  native.release();
#ifdef REBERT_ENABLE_DCHECKS
  on_acquire(&mu, /*blocking=*/true);
#endif
  return status == std::cv_status::no_timeout;
}

}  // namespace rebert::util
