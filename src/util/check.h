// Lightweight runtime checking macros.
//
// REBERT_CHECK is always on (including release builds): it guards invariants
// whose violation would corrupt results silently (netlist graph consistency,
// tensor shape mismatches, ...). Failures throw util::CheckError so callers
// and tests can observe them; nothing in this codebase aborts the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rebert::util {

/// Thrown when a REBERT_CHECK condition fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace rebert::util

#define REBERT_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::rebert::util::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define REBERT_CHECK_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream rebert_check_os_;                                 \
      rebert_check_os_ << msg;                                             \
      ::rebert::util::detail::check_failed(#cond, __FILE__, __LINE__,      \
                                           rebert_check_os_.str());        \
    }                                                                      \
  } while (0)

// Hot-path variant: same semantics as REBERT_CHECK when REBERT_ENABLE_DCHECKS
// is defined (CMake option REBERT_DCHECKS, forced on by sanitizer builds),
// compiled to nothing otherwise. Use only for conditions that a cold-path
// pass already proves (e.g. layer shapes validated once at model build by
// check_model_graph); data-dependent invariants stay on REBERT_CHECK.
#ifdef REBERT_ENABLE_DCHECKS
#define REBERT_DCHECK(cond) REBERT_CHECK(cond)
#define REBERT_DCHECK_MSG(cond, msg) REBERT_CHECK_MSG(cond, msg)
#else
// `false && (cond)` keeps the expression type-checked (and its operands
// "used") without evaluating it at run time.
#define REBERT_DCHECK(cond) \
  do {                      \
    if (false && (cond)) {  \
    }                       \
  } while (0)
#define REBERT_DCHECK_MSG(cond, msg) REBERT_DCHECK(cond)
#endif
