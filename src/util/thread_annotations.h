// Clang thread-safety capability annotations (no-ops elsewhere).
//
// These macros expose Clang's `-Wthread-safety` analysis (capability
// attributes) to the codebase: state is tagged with the mutex that guards
// it (GUARDED_BY), functions declare the locks they need (REQUIRES) or must
// not hold (EXCLUDES), and the compiler proves — at build time, on every
// path — that the declarations hold. GCC and MSVC compile them away, so
// the annotations cost nothing outside the analysis build; the
// `tools/static_analysis.sh` thread-safety stage rebuilds the tree with
//
//   clang++ -Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis
//
// making the declarations a standing gate, not documentation.
//
// The macro set follows the LLVM reference naming
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Use them on the
// rebert::util::Mutex wrapper (util/mutex.h) — never on raw std::mutex,
// which the analysis cannot see through (and which
// tools/check_annotations.sh bans outside the wrapper).
#pragma once

#if defined(__clang__)
#define REBERT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define REBERT_THREAD_ANNOTATION(x)  // no-op: gcc / msvc
#endif

/// Class attribute: instances are capabilities (lockable objects).
#define CAPABILITY(x) REBERT_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII objects that acquire on construction and release
/// on destruction (MutexLock).
#define SCOPED_CAPABILITY REBERT_THREAD_ANNOTATION(scoped_lockable)

/// Member attribute: reads/writes require holding the named capability.
#define GUARDED_BY(x) REBERT_THREAD_ANNOTATION(guarded_by(x))

/// Member attribute: the *pointee* is guarded (the pointer itself is not).
#define PT_GUARDED_BY(x) REBERT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: caller must already hold the capabilities.
#define REQUIRES(...) \
  REBERT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: caller must hold at least shared access.
#define REQUIRES_SHARED(...) \
  REBERT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability (and caller must not hold).
#define ACQUIRE(...) \
  REBERT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  REBERT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: releases the capability.
#define RELEASE(...) \
  REBERT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  REBERT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attribute: acquires only when returning the given value.
#define TRY_ACQUIRE(...) \
  REBERT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  REBERT_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function attribute: caller must NOT hold the capabilities (the function
/// acquires them itself — holding on entry would self-deadlock).
#define EXCLUDES(...) REBERT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: returns a reference to the named capability
/// (mutex-getter functions).
#define RETURN_CAPABILITY(x) REBERT_THREAD_ANNOTATION(lock_returned(x))

/// Function attribute: asserts (at runtime) that the capability is held —
/// tells the analysis to trust it from here on.
#define ASSERT_CAPABILITY(x) REBERT_THREAD_ANNOTATION(assert_capability(x))

/// Function attribute: opt this function out of the analysis. Use only for
/// deliberate protocol violations (e.g. init/teardown single-threaded
/// phases) and say why at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  REBERT_THREAD_ANNOTATION(no_thread_safety_analysis)
