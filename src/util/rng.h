// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the reproduction (circuit generation, netlist
// corruption, dataset sampling, weight initialization, shuffling) draw from
// Rng so that every experiment is reproducible from a single 64-bit seed.
// The generator is xoshiro256**, seeded through SplitMix64 as its authors
// recommend; both are tiny, fast, and have no global state.
#pragma once

#include <cstdint>
#include <vector>

namespace rebert::util {

/// SplitMix64: used to expand a single seed into xoshiro's 256-bit state and
/// as a cheap standalone generator for hashing-style uses.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** wrapped with the distribution helpers this project needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL);

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double gaussian();

  /// Normal with given mean / stddev.
  double gaussian(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample an index from non-negative weights (at least one positive).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child generator (for per-circuit / per-worker
  /// streams that must not perturb the parent sequence).
  Rng fork();

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rebert::util
