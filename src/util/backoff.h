// Deterministic seeded backoff jitter — the anti-thundering-herd knob.
//
// Capped exponential backoff alone synchronizes clients: after a backend
// is SIGKILLed, every waiter computes the same delay from the same
// advisory and re-arrives in one wave, which is exactly the load the
// respawned process cannot absorb. The classic fix is randomized jitter,
// but wall-clock randomness would make retry schedules unreplayable — the
// chaos tests and benches rely on a run being a pure function of its
// seeds.
//
// This header keeps both properties: jitter is a pure function of
// (seed, sequence), where the seed identifies the waiter (client
// connection, supervised worker) and the sequence numbers its attempts.
// Two waiters with different seeds spread out; one waiter replays
// identically every run.
#pragma once

#include <cstdint>

namespace rebert::util {

/// splitmix64 — full-avalanche 64-bit mixer. Cheap, stateless, and good
/// enough to decorrelate (seed, sequence) pairs into uniform-looking
/// words; not for cryptography.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte string — the seed derivation used when a waiter is
/// identified by a name (socket path, worker name) rather than a number.
inline std::uint64_t fnv1a64(const char* data, std::uint64_t len) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::uint64_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

/// `backoff_ms` stretched by a deterministic jitter in
/// [0, backoff_ms * jitter_pct / 100], chosen by (seed, sequence).
/// jitter_pct <= 0 (or a zero base) returns backoff_ms unchanged, so the
/// default-configured paths stay bit-identical to the unjittered code.
/// Jitter only ever ADDS delay: a capped backoff never shrinks below the
/// server's advisory, and a "respawned inside backoff" assertion stays
/// valid with any jitter setting.
inline int apply_backoff_jitter(int backoff_ms, std::uint64_t seed,
                                std::uint64_t sequence, int jitter_pct) {
  if (jitter_pct <= 0 || backoff_ms <= 0) return backoff_ms;
  const std::uint64_t span =
      static_cast<std::uint64_t>(backoff_ms) *
          static_cast<std::uint64_t>(jitter_pct) / 100 +
      1;  // +1: even a 1 ms base with 10% jitter can still de-sync waiters
  const std::uint64_t word = splitmix64(seed ^ splitmix64(sequence));
  return backoff_ms + static_cast<int>(word % span);
}

}  // namespace rebert::util
