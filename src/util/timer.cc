#include "util/timer.h"

#include "util/logging.h"
#include "util/string_utils.h"

namespace rebert::util {

ScopedTimer::ScopedTimer(std::string label) : label_(std::move(label)) {}

ScopedTimer::~ScopedTimer() {
  LOG_INFO << label_ << ": " << format_double(timer_.seconds(), 3) << "s";
}

}  // namespace rebert::util
