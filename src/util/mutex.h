// rebert::util::Mutex / MutexLock / CondVar — the only locking primitives
// the tree may use (tools/check_annotations.sh bans raw std::mutex and
// friends everywhere else).
//
// Three jobs in one wrapper:
//
//   1. Capability annotations. Mutex is a Clang CAPABILITY and MutexLock a
//      SCOPED_CAPABILITY, so `-Wthread-safety` (see thread_annotations.h)
//      can prove every GUARDED_BY / REQUIRES / EXCLUDES declaration in the
//      tree. std::mutex is opaque to that analysis; the wrapper is what
//      makes the locking discipline machine-checked.
//
//   2. Debug lock-order deadlock detection. Under REBERT_DCHECKS each
//      Mutex carries a name and every *blocking* acquisition records an
//      edge (held -> acquired) in a process-wide acquisition graph. The
//      first acquisition that closes a cycle — the classic ABBA inversion
//      — aborts immediately with both acquisition stacks' lock names, even
//      if the interleaving that would actually deadlock never happens on
//      this run. Self-deadlock (re-acquiring a held mutex) and non-owner
//      unlock abort the same way. try_lock() never blocks, so it does
//      bookkeeping but records no ordering edge.
//
//   3. Zero release cost. Without REBERT_DCHECKS every method inlines to
//      the bare std::mutex call — no name, no registry, no atomics — so
//      the serve hot path pays nothing for the debug machinery.
//
// Naming: pass a short hierarchical name ("engine.benches", "cache.shard")
// — it keys the acquisition graph and is what the abort message prints.
// Locks of the same *name* form one node: two distinct "cache.shard"
// instances acquired while one is held would be flagged, which is exactly
// the instance-order hazard such code would have. The lock hierarchy the
// graph enforces is documented in DESIGN.md ("Locking discipline").
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace rebert::util {

class CAPABILITY("mutex") Mutex {
 public:
  /// constexpr so namespace-scope mutexes are constant-initialized (no
  /// dynamic-init order hazards for early logging).
  constexpr explicit Mutex(const char* name = "mutex")
#ifdef REBERT_ENABLE_DCHECKS
      : name_(name) {
  }
#else
  {
    (void)name;
  }
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The primitives opt their *bodies* out of the analysis (std::mutex
  // underneath carries no capability attributes, so the bodies cannot be
  // proven); call sites still see ACQUIRE/RELEASE and are fully checked.
#ifdef REBERT_ENABLE_DCHECKS
  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS;
  bool try_lock() TRY_ACQUIRE(true) NO_THREAD_SAFETY_ANALYSIS;
  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS;
  const char* name() const { return name_; }
#else
  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock();
  }
  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }
  const char* name() const { return "mutex"; }
#endif

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef REBERT_ENABLE_DCHECKS
  const char* name_;
#endif
};

/// RAII lock for a scope. The SCOPED_CAPABILITY attribute tells the
/// analysis that construction acquires `mu` and destruction releases it.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Waits take the Mutex (which the
/// caller must hold — REQUIRES makes the analysis enforce it) rather than
/// a lock object, so wait sites stay checkable:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.wait(mu_);
///
/// Under REBERT_DCHECKS the wait keeps the deadlock registry honest: the
/// blocking reacquisition inside wait() re-records ownership exactly like
/// Mutex::lock(), so a non-owner-unlock or ordering violation around a
/// wait is still caught.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and reacquire before returning.
  void wait(Mutex& mu) REQUIRES(mu);

  /// Like wait(), but wakes at `deadline` at the latest. Returns false on
  /// timeout (mu is held again either way).
  bool wait_until(Mutex& mu,
                  std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu);

  /// Timed wait with a duration; returns false on timeout.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu,
                const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return wait_until(mu, std::chrono::steady_clock::now() +
                              std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  timeout));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rebert::util

namespace rebert {
// The wrapper types are spelled everywhere; promote them to the project
// namespace so call sites read rebert::Mutex without the util:: detour.
using util::CondVar;
using util::Mutex;
using util::MutexLock;
}  // namespace rebert
