// CSV emission for experiment results (EXPERIMENTS.md references these
// files; downstream users can re-plot without re-running the sweeps).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rebert::util {

class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row. Throws on I/O
  /// failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision);

  const std::string& path() const { return path_; }

  /// Quote a field per RFC 4180 if it contains a comma, quote, or newline.
  static std::string escape(const std::string& field);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace rebert::util
