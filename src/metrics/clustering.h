// Clustering-comparison metrics (§III-A-3).
//
// The paper scores word recovery with the Adjusted Rand Index between the
// predicted grouping of bits and the ground-truth grouping. We implement
// ARI plus the companions a practitioner wants when debugging a grouping
// method: plain Rand index, pairwise precision/recall/F1, and normalized
// mutual information. All functions take two label vectors of equal length;
// label values are arbitrary ids (only equality matters).
#pragma once

#include <vector>

namespace rebert::metrics {

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, ~0 = random.
/// ARI = (Index - E[Index]) / (MaxIndex - E[Index]) over bit pairs.
/// When the denominator is zero (both partitions trivially all-singleton or
/// all-in-one) the partitions are identical and 1.0 is returned, matching
/// the standard convention.
double adjusted_rand_index(const std::vector<int>& truth,
                           const std::vector<int>& predicted);

/// Plain Rand index in [0, 1]: fraction of pairs on which both partitions
/// agree (together-together or apart-apart).
double rand_index(const std::vector<int>& truth,
                  const std::vector<int>& predicted);

/// Pairwise classification view: a predicted pair is a true positive if the
/// two bits share a word in both partitions.
struct PairwiseScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  long long true_positives = 0;
  long long predicted_positives = 0;
  long long actual_positives = 0;
};
PairwiseScores pairwise_scores(const std::vector<int>& truth,
                               const std::vector<int>& predicted);

/// Normalized mutual information in [0, 1] (arithmetic-mean normalization).
double normalized_mutual_information(const std::vector<int>& truth,
                                     const std::vector<int>& predicted);

/// Rosenberg & Hirschberg's V-measure family. Homogeneity penalizes
/// predicted words mixing several true words (over-merging); completeness
/// penalizes true words split across predictions (over-splitting); the
/// V-measure is their harmonic mean. All in [0, 1]; trivially-equal
/// partitions score 1.
struct VMeasure {
  double homogeneity = 0.0;
  double completeness = 0.0;
  double v = 0.0;
};
VMeasure v_measure(const std::vector<int>& truth,
                   const std::vector<int>& predicted);

/// Number of distinct labels.
int num_clusters(const std::vector<int>& labels);

}  // namespace rebert::metrics
