#include "metrics/clustering.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace rebert::metrics {

namespace {

inline double choose2(double n) { return n * (n - 1.0) / 2.0; }

// Contingency table between two labelings plus marginals.
struct Contingency {
  std::unordered_map<long long, long long> cells;  // (ti<<32|pi) -> count
  std::unordered_map<int, long long> row;          // truth label -> count
  std::unordered_map<int, long long> col;          // predicted label -> count
  long long n = 0;
};

Contingency build_contingency(const std::vector<int>& truth,
                              const std::vector<int>& predicted) {
  REBERT_CHECK_MSG(truth.size() == predicted.size(),
                   "label vectors differ in length: " << truth.size() << " vs "
                                                      << predicted.size());
  Contingency c;
  c.n = static_cast<long long>(truth.size());
  // Dense re-indexing so the packed key below cannot collide on negatives.
  std::unordered_map<int, int> tid, pid;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const int t = tid.emplace(truth[i], static_cast<int>(tid.size()))
                      .first->second;
    const int p = pid.emplace(predicted[i], static_cast<int>(pid.size()))
                      .first->second;
    ++c.cells[(static_cast<long long>(t) << 32) | static_cast<long long>(p)];
    ++c.row[t];
    ++c.col[p];
  }
  return c;
}

}  // namespace

double adjusted_rand_index(const std::vector<int>& truth,
                           const std::vector<int>& predicted) {
  const Contingency c = build_contingency(truth, predicted);
  if (c.n < 2) return 1.0;

  double sum_cells = 0.0, sum_rows = 0.0, sum_cols = 0.0;
  for (const auto& [key, count] : c.cells)
    sum_cells += choose2(static_cast<double>(count));
  for (const auto& [label, count] : c.row)
    sum_rows += choose2(static_cast<double>(count));
  for (const auto& [label, count] : c.col)
    sum_cols += choose2(static_cast<double>(count));

  const double total_pairs = choose2(static_cast<double>(c.n));
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  const double denom = max_index - expected;
  if (std::abs(denom) < 1e-12) return 1.0;  // both partitions trivial
  return (sum_cells - expected) / denom;
}

double rand_index(const std::vector<int>& truth,
                  const std::vector<int>& predicted) {
  const Contingency c = build_contingency(truth, predicted);
  if (c.n < 2) return 1.0;

  double sum_cells = 0.0, sum_rows = 0.0, sum_cols = 0.0;
  for (const auto& [key, count] : c.cells)
    sum_cells += choose2(static_cast<double>(count));
  for (const auto& [label, count] : c.row)
    sum_rows += choose2(static_cast<double>(count));
  for (const auto& [label, count] : c.col)
    sum_cols += choose2(static_cast<double>(count));

  const double total_pairs = choose2(static_cast<double>(c.n));
  // agreements = together-in-both + apart-in-both
  const double together_both = sum_cells;
  const double apart_both =
      total_pairs - sum_rows - sum_cols + sum_cells;
  return (together_both + apart_both) / total_pairs;
}

PairwiseScores pairwise_scores(const std::vector<int>& truth,
                               const std::vector<int>& predicted) {
  const Contingency c = build_contingency(truth, predicted);
  PairwiseScores s;
  double tp = 0.0, pp = 0.0, ap = 0.0;
  for (const auto& [key, count] : c.cells)
    tp += choose2(static_cast<double>(count));
  for (const auto& [label, count] : c.col)
    pp += choose2(static_cast<double>(count));
  for (const auto& [label, count] : c.row)
    ap += choose2(static_cast<double>(count));
  s.true_positives = static_cast<long long>(tp);
  s.predicted_positives = static_cast<long long>(pp);
  s.actual_positives = static_cast<long long>(ap);
  s.precision = pp > 0 ? tp / pp : 1.0;  // no predicted pairs: vacuous
  s.recall = ap > 0 ? tp / ap : 1.0;
  s.f1 = (s.precision + s.recall) > 0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

double normalized_mutual_information(const std::vector<int>& truth,
                                     const std::vector<int>& predicted) {
  const Contingency c = build_contingency(truth, predicted);
  if (c.n == 0) return 1.0;
  const double n = static_cast<double>(c.n);

  double h_t = 0.0, h_p = 0.0, mi = 0.0;
  for (const auto& [label, count] : c.row) {
    const double p = count / n;
    h_t -= p * std::log(p);
  }
  for (const auto& [label, count] : c.col) {
    const double p = count / n;
    h_p -= p * std::log(p);
  }
  for (const auto& [key, count] : c.cells) {
    const int t = static_cast<int>(key >> 32);
    const int p = static_cast<int>(key & 0xffffffffLL);
    const double joint = count / n;
    const double pt = c.row.at(t) / n;
    const double pp = c.col.at(p) / n;
    mi += joint * std::log(joint / (pt * pp));
  }
  const double norm = 0.5 * (h_t + h_p);
  if (norm < 1e-12) return 1.0;  // both partitions trivial -> identical
  return mi / norm;
}

VMeasure v_measure(const std::vector<int>& truth,
                   const std::vector<int>& predicted) {
  const Contingency c = build_contingency(truth, predicted);
  VMeasure result;
  if (c.n == 0) {
    result.homogeneity = result.completeness = result.v = 1.0;
    return result;
  }
  const double n = static_cast<double>(c.n);

  double h_truth = 0.0, h_pred = 0.0;
  for (const auto& [label, count] : c.row) {
    const double p = count / n;
    h_truth -= p * std::log(p);
  }
  for (const auto& [label, count] : c.col) {
    const double p = count / n;
    h_pred -= p * std::log(p);
  }
  // Conditional entropies H(truth|pred) and H(pred|truth).
  double h_truth_given_pred = 0.0, h_pred_given_truth = 0.0;
  for (const auto& [key, count] : c.cells) {
    const int t = static_cast<int>(key >> 32);
    const int p = static_cast<int>(key & 0xffffffffLL);
    const double joint = count / n;
    h_truth_given_pred -=
        joint * std::log(static_cast<double>(count) / c.col.at(p));
    h_pred_given_truth -=
        joint * std::log(static_cast<double>(count) / c.row.at(t));
  }
  result.homogeneity =
      h_truth < 1e-12 ? 1.0 : 1.0 - h_truth_given_pred / h_truth;
  result.completeness =
      h_pred < 1e-12 ? 1.0 : 1.0 - h_pred_given_truth / h_pred;
  const double total = result.homogeneity + result.completeness;
  result.v = total > 1e-12
                 ? 2.0 * result.homogeneity * result.completeness / total
                 : 0.0;
  return result;
}

int num_clusters(const std::vector<int>& labels) {
  std::unordered_set<int> distinct(labels.begin(), labels.end());
  return static_cast<int>(distinct.size());
}

}  // namespace rebert::metrics
