// Word generation from the score matrix (§II-D).
//
// Threshold = max(score matrix) / 3 — dynamically adapted per circuit, as
// the paper specifies, because score ranges vary between netlists. Every
// pair scoring above the threshold becomes a graph edge; connected
// components are the recovered words.
#pragma once

#include <vector>

#include "rebert/scoring.h"

namespace rebert::core {

struct GroupingOptions {
  /// Numerator of the dynamic threshold: threshold = max_score * factor.
  /// The paper uses 1/3.
  double threshold_factor = 1.0 / 3.0;
};

/// Union-find over n elements (exposed for reuse and tests).
class UnionFind {
 public:
  explicit UnionFind(int n);
  int find(int x);
  void unite(int a, int b);
  bool connected(int a, int b) { return find(a) == find(b); }
  /// Component labels compacted to 0..k-1 in first-seen order.
  std::vector<int> labels();

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
};

/// Recovered word labels, one per bit (index-aligned with the score
/// matrix). If every pair was filtered or scores are non-positive, every
/// bit becomes its own singleton word.
std::vector<int> group_words(const ScoreMatrix& scores,
                             const GroupingOptions& options = {});

}  // namespace rebert::core
