// Human-readable recovery reports.
//
// Reverse engineers consume the grouping as a report: which flip-flops form
// which word, and how confident the model is in each group. Cohesion
// statistics expose weak groups (low mean pairwise score) that deserve
// manual inspection — the audit workflow of the paper's introduction.
#pragma once

#include <string>
#include <vector>

#include "nl/words.h"
#include "rebert/grouping.h"
#include "rebert/scoring.h"

namespace rebert::core {

struct WordReportEntry {
  std::string word_name;
  std::vector<std::string> bits;     // flip-flop names
  double mean_intra_score = 0.0;     // avg model score of in-word pairs
  double min_intra_score = 0.0;      // weakest in-word link
  double filtered_intra_fraction = 0.0;  // in-word pairs cut by the filter
};

struct WordReport {
  std::vector<WordReportEntry> words;  // multi-bit words first, descending
                                       // cohesion
  double threshold = 0.0;              // the dynamic max/3 threshold used
  int num_singletons = 0;

  std::string to_string() const;
  /// Machine-readable form for downstream tooling (stable key order).
  std::string to_json() const;
};

/// Build a report from the scored matrix and the resulting labels.
/// `bits` is the bit universe in matrix order.
WordReport make_word_report(const std::vector<nl::Bit>& bits,
                            const ScoreMatrix& scores,
                            const std::vector<int>& labels,
                            const GroupingOptions& options = {});

}  // namespace rebert::core
