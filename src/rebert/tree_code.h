// Tree-based positional codes (§II-B-3, Fig. 3).
//
// Each tree node's code encodes its root-to-node path, two bits per level:
// the root is the all-zero code; a child's code is its parent's code
// right-shifted by two positions with '10' inserted for a left child and
// '01' for a right child. Equivalently, bits [0,1] of a node's code name
// the branch taken into that node, bits [2,3] the branch above it, and so
// on — deeper ancestry occupies higher offsets until it falls off the fixed
// code width.
//
// The paper sizes the code as twice the node count and concatenates all
// node codes; for the model we emit fixed-width per-token codes (width =
// BertConfig::tree_code_dim) aligned with the pre-order token sequence, and
// a learned linear layer projects them into the hidden space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nl/cone.h"
#include "tensor/tensor.h"

namespace rebert::core {

/// Per-node path codes in pre-order (index-aligned with ConeTree::nodes).
/// codes[i] has exactly `width` entries in {0,1}.
std::vector<std::vector<std::uint8_t>> tree_codes(const nl::ConeTree& tree,
                                                  int width);

/// Codes as [num_nodes, width] tensor rows (model input form).
tensor::Tensor tree_codes_tensor(const nl::ConeTree& tree, int width);

/// Render one code as a bit string, e.g. "100100" (for tests and the
/// tokenize_demo example reproducing Fig. 3).
std::string code_string(const std::vector<std::uint8_t>& code);

}  // namespace rebert::core
