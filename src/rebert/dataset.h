// Training-data generation (§III-A-2).
//
// For each training circuit, six corrupted variants are produced (R-Index
// 0, 0.2, ..., 1.0). Each variant contributes labelled bit pairs: positives
// (same ground-truth word) and negatives (different words), balanced at
// 1 : 1.2 positive : negative, with at most `max_samples_per_circuit`
// samples per circuit so large designs cannot dominate. Evaluation uses
// leave-one-out cross-validation across the benchmark suite.
#pragma once

#include <string>
#include <vector>

#include "bert/trainer.h"
#include "nl/netlist.h"
#include "nl/words.h"
#include "rebert/tokenizer.h"

namespace rebert::core {

/// A benchmark circuit with its ground truth; the unit of LOO-CV.
struct CircuitData {
  std::string name;
  nl::Netlist netlist;  // 2-input decomposed
  nl::WordMap words;
};

struct DatasetOptions {
  std::vector<double> r_indices{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  double negative_ratio = 1.2;      // negatives per positive
  int max_samples_per_circuit = 5000;
  std::uint64_t seed = 2024;
  TokenizerOptions tokenizer;
};

/// Labelled pair examples from one circuit (all R-Index variants).
std::vector<bert::LabeledExample> build_examples_for_circuit(
    const CircuitData& circuit, const DatasetOptions& options);

/// Aggregate over several circuits and shuffle.
std::vector<bert::LabeledExample> build_training_set(
    const std::vector<const CircuitData*>& circuits,
    const DatasetOptions& options);

/// Leave-one-out split: all circuits except `test_index` are training.
std::vector<const CircuitData*> loo_train_split(
    const std::vector<CircuitData>& circuits, std::size_t test_index);

}  // namespace rebert::core
