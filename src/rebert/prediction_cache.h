// Prediction cache — the "acceleration opportunity" the paper's
// conclusion defers to future work.
//
// After leaf generalization (§II-A-2) many bits of a word share *exactly*
// the same token sequence (template copies differ only in signal names),
// so the model is repeatedly asked to score identical inputs. Scores are
// deterministic at inference, so memoizing on the (sequence, sequence,
// tree-code) pair is lossless: the cached pipeline returns bit-identical
// score matrices while skipping most forward passes. The speedup bench
// (ablation_cache) measures the effect; on template-rich circuits the hit
// rate is high.
//
// Two implementations share the key scheme:
//   * PredictionCache — single-map cache for serial pipelines. Its
//     hit/miss statistics are atomic (lookup is const and may be called
//     from several readers), but the map itself is NOT thread-safe.
//   * ShardedPredictionCache — mutex-striped cache for the concurrent
//     runtime: the key space is split across kShards independent maps,
//     each behind its own mutex, so parallel scorers rarely contend on
//     the same lock. insert() of the same key from two threads is benign:
//     inference is deterministic, so both write the same score.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rebert/tokenizer.h"
#include "util/mutex.h"

namespace rebert::core {

namespace detail {

/// Saturating hit/miss counters shared by both cache flavours. Increments
/// are relaxed atomics (counters only feed statistics, never control
/// flow); totals saturate instead of wrapping so hit_rate() stays
/// meaningful even on absurdly long-lived servers.
class CacheStats {
 public:
  void record_hit() { bump(hits_); }
  void record_miss() { bump(misses_); }

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// hits / (hits + misses); 0 before any lookup. The sum is computed in
  /// a wider domain so hits + misses cannot overflow the division.
  double hit_rate() const {
    const double h = static_cast<double>(hits());
    const double m = static_cast<double>(misses());
    const double total = h + m;
    return total > 0.0 ? h / total : 0.0;
  }

  void reset() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  static void bump(std::atomic<std::uint64_t>& counter) {
    std::uint64_t current = counter.load(std::memory_order_relaxed);
    // Saturate at max instead of wrapping to 0 (which would report a
    // nonsense hit rate). The CAS loop only matters within one increment
    // of the ceiling; the fast path is a plain fetch_add.
    if (current >= kSaturated) return;
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  static constexpr std::uint64_t kSaturated = ~0ULL - 1024;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace detail

/// A read-only score source layered beneath ShardedPredictionCache's
/// mutable shards — the hook the zero-copy warm start plugs into: a
/// mapped RBPC v2 snapshot (persist/mmap_snapshot.h) implements this and
/// serves historical scores straight off its mapping, so a restarted
/// engine is warm without materializing a single record. Implementations
/// must be safe for concurrent lookup() calls and immutable for the
/// attachment's lifetime.
class ScoreTier {
 public:
  virtual ~ScoreTier() = default;

  virtual bool lookup(std::uint64_t key, double* score) const = 0;
  virtual std::size_t size() const = 0;

  /// Append every record (sorted by key) to *out — what export/merge
  /// paths use so snapshots taken from a warm cache keep the tier's
  /// entries.
  virtual void append_entries(
      std::vector<std::pair<std::uint64_t, double>>* out) const = 0;
};

class PredictionCache {
 public:
  /// Order-sensitive key over both sequences' tokens and tree codes
  /// (encode_pair(a, b) and encode_pair(b, a) are different model inputs).
  static std::uint64_t key_of(const BitSequence& a, const BitSequence& b);

  /// Returns true and writes the score on a hit.
  bool lookup(std::uint64_t key, double* score) const;

  void insert(std::uint64_t key, double score);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return stats_.hits(); }
  std::uint64_t misses() const { return stats_.misses(); }
  double hit_rate() const { return stats_.hit_rate(); }

  /// All entries sorted by key — what persist::save_cache snapshots.
  std::vector<std::pair<std::uint64_t, double>> export_entries() const;

  /// Warm-start: insert snapshot records (existing keys keep their value,
  /// statistics untouched). Returns the number of records inserted.
  std::size_t import_entries(
      const std::vector<std::pair<std::uint64_t, double>>& entries);

  void clear();

 private:
  mutable detail::CacheStats stats_;
  std::unordered_map<std::uint64_t, double> entries_;
};

/// Thread-safe cache for the concurrent runtime: fixed shard count, one
/// mutex per shard, atomic statistics. All methods are safe to call from
/// any number of threads concurrently.
class ShardedPredictionCache {
 public:
  /// `shards` is rounded up to a power of two; 0 picks the default (64 —
  /// enough striping that 8-16 scoring threads rarely collide).
  explicit ShardedPredictionCache(int shards = 0);

  bool lookup(std::uint64_t key, double* score) const;
  void insert(std::uint64_t key, double score);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::size_t size() const;  // sum over shards; O(shards)
  std::uint64_t hits() const { return stats_.hits(); }
  std::uint64_t misses() const { return stats_.misses(); }
  double hit_rate() const { return stats_.hit_rate(); }

  /// All entries across shards, sorted by key. Shard-agnostic: a snapshot
  /// exported at one shard count imports at any other (or into the serial
  /// PredictionCache) — records carry no shard structure.
  std::vector<std::pair<std::uint64_t, double>> export_entries() const;

  /// Warm-start from snapshot records; each key lands in its own shard.
  /// Existing keys keep their value, statistics are untouched. Returns the
  /// number of records inserted. Thread-safe like every other method.
  std::size_t import_entries(
      const std::vector<std::pair<std::uint64_t, double>>& entries);

  /// Attach a read-only warm tier consulted after a shard miss (a tier
  /// hit counts as a cache hit, so warmed keys are never re-scored or
  /// re-inserted). Replaces any previous tier; earlier tiers stay alive
  /// until the cache dies, so a concurrent lookup never races a teardown.
  /// size() and export_entries() include the tier's records.
  void attach_warm_tier(std::shared_ptr<const ScoreTier> tier)
      EXCLUDES(tier_mu_);

  /// The currently attached tier (nullptr when none) — for tests and
  /// stats plumbing.
  const ScoreTier* warm_tier() const {
    return warm_tier_.load(std::memory_order_acquire);
  }

  void clear() EXCLUDES(tier_mu_);

 private:
  struct Shard {
    // All shards share one graph node ("cache.shard"): the code never
    // holds two shards at once, and the debug registry aborts if that
    // discipline regresses (two same-name instances held together).
    mutable util::Mutex mu{"cache.shard"};
    std::unordered_map<std::uint64_t, double> entries GUARDED_BY(mu);
  };

  Shard& shard_for(std::uint64_t key) const;

  mutable detail::CacheStats stats_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_mask_ = 0;

  // The raw pointer is the lock-free read path (acquire pairs with the
  // release in attach_warm_tier); the owners vector keeps every tier ever
  // attached alive, so a reader that loaded a pointer can never see its
  // pointee destroyed.
  std::atomic<const ScoreTier*> warm_tier_{nullptr};
  mutable util::Mutex tier_mu_{"cache.tier"};
  std::vector<std::shared_ptr<const ScoreTier>> tier_owners_
      GUARDED_BY(tier_mu_);
};

/// Hash helper (FNV-1a over ints), exposed for tests.
std::uint64_t hash_sequence(std::uint64_t seed, const BitSequence& seq);

}  // namespace rebert::core
