// Prediction cache — the "acceleration opportunity" the paper's
// conclusion defers to future work.
//
// After leaf generalization (§II-A-2) many bits of a word share *exactly*
// the same token sequence (template copies differ only in signal names),
// so the model is repeatedly asked to score identical inputs. Scores are
// deterministic at inference, so memoizing on the (sequence, sequence,
// tree-code) pair is lossless: the cached pipeline returns bit-identical
// score matrices while skipping most forward passes. The speedup bench
// (ablation_cache) measures the effect; on template-rich circuits the hit
// rate is high.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rebert/tokenizer.h"

namespace rebert::core {

class PredictionCache {
 public:
  /// Order-sensitive key over both sequences' tokens and tree codes
  /// (encode_pair(a, b) and encode_pair(b, a) are different model inputs).
  static std::uint64_t key_of(const BitSequence& a, const BitSequence& b);

  /// Returns true and writes the score on a hit.
  bool lookup(std::uint64_t key, double* score) const;

  void insert(std::uint64_t key, double score);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }

  void clear();

 private:
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::unordered_map<std::uint64_t, double> entries_;
};

/// Hash helper (FNV-1a over ints), exposed for tests.
std::uint64_t hash_sequence(std::uint64_t seed, const BitSequence& seq);

}  // namespace rebert::core
