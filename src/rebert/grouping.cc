#include "rebert/grouping.h"

#include "util/check.h"

namespace rebert::core {

UnionFind::UnionFind(int n)
    : parent_(static_cast<std::size_t>(n)),
      rank_(static_cast<std::size_t>(n), 0) {
  REBERT_CHECK(n >= 0);
  for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
}

int UnionFind::find(int x) {
  REBERT_CHECK(x >= 0 && x < static_cast<int>(parent_.size()));
  int root = x;
  while (parent_[static_cast<std::size_t>(root)] != root)
    root = parent_[static_cast<std::size_t>(root)];
  while (parent_[static_cast<std::size_t>(x)] != root) {
    const int next = parent_[static_cast<std::size_t>(x)];
    parent_[static_cast<std::size_t>(x)] = root;
    x = next;
  }
  return root;
}

void UnionFind::unite(int a, int b) {
  int ra = find(a), rb = find(b);
  if (ra == rb) return;
  if (rank_[static_cast<std::size_t>(ra)] <
      rank_[static_cast<std::size_t>(rb)])
    std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  if (rank_[static_cast<std::size_t>(ra)] ==
      rank_[static_cast<std::size_t>(rb)])
    ++rank_[static_cast<std::size_t>(ra)];
}

std::vector<int> UnionFind::labels() {
  std::vector<int> out(parent_.size(), -1);
  std::vector<int> root_label(parent_.size(), -1);
  int next = 0;
  for (int i = 0; i < static_cast<int>(parent_.size()); ++i) {
    const int root = find(i);
    if (root_label[static_cast<std::size_t>(root)] < 0)
      root_label[static_cast<std::size_t>(root)] = next++;
    out[static_cast<std::size_t>(i)] =
        root_label[static_cast<std::size_t>(root)];
  }
  return out;
}

std::vector<int> group_words(const ScoreMatrix& scores,
                             const GroupingOptions& options) {
  REBERT_CHECK_MSG(options.threshold_factor > 0.0 &&
                       options.threshold_factor < 1.0,
                   "threshold factor must be in (0,1)");
  const int n = scores.size();
  UnionFind uf(n);
  const double max_score = scores.max_score();
  if (max_score > 0.0) {
    const double threshold = max_score * options.threshold_factor;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (scores.at(i, j) > threshold) uf.unite(i, j);
  }
  return uf.labels();
}

}  // namespace rebert::core
