#include "rebert/report.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::core {

WordReport make_word_report(const std::vector<nl::Bit>& bits,
                            const ScoreMatrix& scores,
                            const std::vector<int>& labels,
                            const GroupingOptions& options) {
  REBERT_CHECK(bits.size() == labels.size());
  REBERT_CHECK(static_cast<int>(bits.size()) == scores.size());

  WordReport report;
  const double max_score = scores.max_score();
  report.threshold =
      max_score > 0.0 ? max_score * options.threshold_factor : 0.0;

  std::map<int, std::vector<int>> groups;
  for (std::size_t i = 0; i < labels.size(); ++i)
    groups[labels[i]].push_back(static_cast<int>(i));

  for (const auto& [label, members] : groups) {
    if (members.size() < 2) {
      ++report.num_singletons;
      continue;
    }
    WordReportEntry entry;
    entry.word_name = "word_" + std::to_string(label);
    for (int member : members)
      entry.bits.push_back(bits[static_cast<std::size_t>(member)].name);

    double total = 0.0;
    double minimum = 1.0;
    int scored = 0, filtered = 0;
    for (std::size_t x = 0; x < members.size(); ++x) {
      for (std::size_t y = x + 1; y < members.size(); ++y) {
        const double s = scores.at(members[x], members[y]);
        if (s == ScoreMatrix::kFiltered) {
          ++filtered;
          continue;
        }
        total += s;
        minimum = std::min(minimum, s);
        ++scored;
      }
    }
    entry.mean_intra_score = scored ? total / scored : 0.0;
    entry.min_intra_score = scored ? minimum : 0.0;
    const int pairs = scored + filtered;
    entry.filtered_intra_fraction =
        pairs ? static_cast<double>(filtered) / pairs : 0.0;
    report.words.push_back(std::move(entry));
  }

  std::sort(report.words.begin(), report.words.end(),
            [](const WordReportEntry& a, const WordReportEntry& b) {
              if (a.mean_intra_score != b.mean_intra_score)
                return a.mean_intra_score > b.mean_intra_score;
              return a.word_name < b.word_name;
            });
  return report;
}

std::string WordReport::to_string() const {
  std::ostringstream os;
  os << "recovered " << words.size() << " multi-bit words, "
     << num_singletons << " singleton bits (threshold "
     << util::format_double(threshold, 3) << ")\n";
  for (const WordReportEntry& entry : words) {
    os << "  " << entry.word_name << " [" << entry.bits.size()
       << " bits, cohesion " << util::format_double(entry.mean_intra_score, 3)
       << ", weakest link " << util::format_double(entry.min_intra_score, 3);
    if (entry.filtered_intra_fraction > 0.0)
      os << ", " << util::format_double(
                entry.filtered_intra_fraction * 100.0, 0)
         << "% filtered";
    os << "]\n    ";
    os << util::join(entry.bits, " ");
    os << "\n";
  }
  return os.str();
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u0000";  // control chars never appear in net names; keep
                         // the escape trivially valid anyway
      continue;
    }
    out += c;
  }
  return out;
}
}  // namespace

std::string WordReport::to_json() const {
  std::ostringstream os;
  os << "{\"threshold\":" << util::format_double(threshold, 6)
     << ",\"num_singletons\":" << num_singletons << ",\"words\":[";
  for (std::size_t w = 0; w < words.size(); ++w) {
    const WordReportEntry& entry = words[w];
    if (w) os << ',';
    os << "{\"name\":\"" << json_escape(entry.word_name) << "\",\"bits\":[";
    for (std::size_t b = 0; b < entry.bits.size(); ++b) {
      if (b) os << ',';
      os << '"' << json_escape(entry.bits[b]) << '"';
    }
    os << "],\"mean_intra_score\":"
       << util::format_double(entry.mean_intra_score, 6)
       << ",\"min_intra_score\":"
       << util::format_double(entry.min_intra_score, 6)
       << ",\"filtered_intra_fraction\":"
       << util::format_double(entry.filtered_intra_fraction, 6) << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace rebert::core
