#include "rebert/dataset.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "nl/corruption.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rebert::core {

namespace {

struct IndexPair {
  int a;
  int b;
};

// Collect positive pairs (same label) and a sample of negative pairs from
// one circuit variant's bit labels.
void sample_pairs(const std::vector<int>& labels, int budget,
                  double negative_ratio, util::Rng* rng,
                  std::vector<IndexPair>* positives,
                  std::vector<IndexPair>* negatives) {
  const int n = static_cast<int>(labels.size());
  positives->clear();
  negatives->clear();
  if (n < 2 || budget <= 0) return;

  // Positives: enumerate within label groups (words are small, so this is
  // cheap even for the biggest benchmarks).
  std::unordered_map<int, std::vector<int>> groups;
  for (int i = 0; i < n; ++i) groups[labels[static_cast<std::size_t>(i)]].push_back(i);
  for (const auto& [label, members] : groups)
    for (std::size_t x = 0; x < members.size(); ++x)
      for (std::size_t y = x + 1; y < members.size(); ++y)
        positives->push_back({members[x], members[y]});
  rng->shuffle(*positives);

  // Budget split: pos + ratio*pos <= budget.
  const int max_positives = std::max(
      1, static_cast<int>(budget / (1.0 + negative_ratio)));
  if (static_cast<int>(positives->size()) > max_positives)
    positives->resize(static_cast<std::size_t>(max_positives));

  const int want_negatives = std::min(
      budget - static_cast<int>(positives->size()),
      static_cast<int>(positives->size() * negative_ratio + 0.5));

  // Negatives: rejection-sample random pairs with different labels (dense
  // enumeration would be quadratic in FF count on the big benchmarks).
  int attempts = 0;
  const int max_attempts = want_negatives * 50 + 100;
  std::unordered_map<long long, bool> seen;
  while (static_cast<int>(negatives->size()) < want_negatives &&
         attempts++ < max_attempts) {
    const int a = static_cast<int>(rng->uniform_u64(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng->uniform_u64(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    if (labels[static_cast<std::size_t>(a)] ==
        labels[static_cast<std::size_t>(b)])
      continue;
    const int lo = std::min(a, b), hi = std::max(a, b);
    const long long key = static_cast<long long>(lo) * n + hi;
    if (seen.count(key)) continue;
    seen.emplace(key, true);
    negatives->push_back({lo, hi});
  }
}

}  // namespace

std::vector<bert::LabeledExample> build_examples_for_circuit(
    const CircuitData& circuit, const DatasetOptions& options) {
  REBERT_CHECK_MSG(!options.r_indices.empty(), "need at least one R-Index");
  REBERT_CHECK(options.negative_ratio > 0.0);
  REBERT_CHECK(options.max_samples_per_circuit >= 1);

  const Tokenizer tokenizer(options.tokenizer);
  util::Rng rng(options.seed ^
                std::hash<std::string>{}(circuit.name));

  const int budget_per_variant = std::max(
      1, options.max_samples_per_circuit /
             static_cast<int>(options.r_indices.size()));

  std::vector<bert::LabeledExample> examples;
  for (std::size_t v = 0; v < options.r_indices.size(); ++v) {
    const double r = options.r_indices[v];
    nl::CorruptionOptions corrupt_options;
    corrupt_options.r_index = r;
    corrupt_options.seed = rng.next_u64();
    const nl::Netlist variant =
        r == 0.0 ? circuit.netlist
                 : nl::corrupt_netlist(circuit.netlist, corrupt_options);

    const std::vector<nl::Bit> bits = nl::extract_bits(variant);
    if (bits.size() < 2) continue;
    const std::vector<int> labels = circuit.words.labels_for(bits);
    const std::vector<BitSequence> sequences = tokenizer.tokenize_bits(variant);

    std::vector<IndexPair> positives, negatives;
    sample_pairs(labels, budget_per_variant, options.negative_ratio, &rng,
                 &positives, &negatives);
    for (const IndexPair& p : positives)
      examples.push_back(
          {tokenizer.encode_pair(sequences[static_cast<std::size_t>(p.a)],
                                 sequences[static_cast<std::size_t>(p.b)]),
           1});
    for (const IndexPair& p : negatives)
      examples.push_back(
          {tokenizer.encode_pair(sequences[static_cast<std::size_t>(p.a)],
                                 sequences[static_cast<std::size_t>(p.b)]),
           0});
  }
  // Per-circuit cap across all variants.
  if (static_cast<int>(examples.size()) > options.max_samples_per_circuit) {
    rng.shuffle(examples);
    examples.resize(static_cast<std::size_t>(options.max_samples_per_circuit));
  }
  return examples;
}

std::vector<bert::LabeledExample> build_training_set(
    const std::vector<const CircuitData*>& circuits,
    const DatasetOptions& options) {
  REBERT_CHECK_MSG(!circuits.empty(), "no training circuits");
  std::vector<bert::LabeledExample> all;
  for (const CircuitData* circuit : circuits) {
    REBERT_CHECK(circuit != nullptr);
    std::vector<bert::LabeledExample> examples =
        build_examples_for_circuit(*circuit, options);
    LOG_DEBUG << "circuit " << circuit->name << ": " << examples.size()
              << " examples";
    for (auto& e : examples) all.push_back(std::move(e));
  }
  util::Rng rng(options.seed ^ 0xabcdefULL);
  rng.shuffle(all);
  return all;
}

std::vector<const CircuitData*> loo_train_split(
    const std::vector<CircuitData>& circuits, std::size_t test_index) {
  REBERT_CHECK_MSG(test_index < circuits.size(),
                   "test index out of range");
  std::vector<const CircuitData*> train;
  for (std::size_t i = 0; i < circuits.size(); ++i)
    if (i != test_index) train.push_back(&circuits[i]);
  return train;
}

}  // namespace rebert::core
