#include "rebert/filter.h"

#include <algorithm>
#include <unordered_map>

namespace rebert::core {

double jaccard_similarity(const std::vector<int>& a,
                          const std::vector<int>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_map<int, int> count_a, count_b;
  for (int t : a) ++count_a[t];
  for (int t : b) ++count_b[t];
  long long intersection = 0, uni = 0;
  for (const auto& [token, ca] : count_a) {
    const auto it = count_b.find(token);
    const int cb = it == count_b.end() ? 0 : it->second;
    intersection += std::min(ca, cb);
    uni += std::max(ca, cb);
  }
  for (const auto& [token, cb] : count_b)
    if (!count_a.count(token)) uni += cb;
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

bool passes_filter(const BitSequence& a, const BitSequence& b,
                   const FilterOptions& options) {
  if (!options.enabled) return true;
  return jaccard_similarity(a.token_ids, b.token_ids) >= options.threshold;
}

}  // namespace rebert::core
