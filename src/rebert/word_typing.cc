#include "rebert/word_typing.h"

#include <algorithm>
#include <numeric>

#include "nl/simulate.h"
#include "util/check.h"
#include "util/rng.h"

namespace rebert::core {

const char* word_kind_name(WordKind kind) {
  switch (kind) {
    case WordKind::kConstant: return "constant";
    case WordKind::kCounter: return "counter";
    case WordKind::kShiftRegister: return "shift-register";
    case WordKind::kDataRegister: return "data-register";
    case WordKind::kFlag: return "flag";
    case WordKind::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

// traces[t][b] = value of bit b after cycle t.
using Traces = std::vector<std::vector<std::uint8_t>>;

Traces simulate_traces(const nl::Netlist& netlist,
                       const std::vector<nl::GateId>& dffs,
                       const AnalyzeOptions& options) {
  nl::Simulator sim(netlist);
  sim.reset();
  util::Rng rng(options.seed);
  Traces traces;
  traces.reserve(static_cast<std::size_t>(options.cycles));
  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    std::vector<bool> inputs(netlist.inputs().size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
      inputs[i] = rng.bernoulli(options.input_high_probability);
    sim.set_inputs(inputs);
    sim.eval_combinational();
    sim.step();
    sim.eval_combinational();  // expose the freshly latched Q values
    std::vector<std::uint8_t> row;
    row.reserve(dffs.size());
    for (nl::GateId id : dffs)
      row.push_back(sim.value(id) ? 1 : 0);
    traces.push_back(std::move(row));
  }
  return traces;
}

bool word_changed(const Traces& traces, std::size_t t) {
  return traces[t] != traces[t - 1];
}

// Fraction of transitions where trace of bit `to` at t equals bit `from`
// at t-1 — the "copies from" evidence used for shift detection — counted
// only on cycles where the word changed (holds are uninformative).
double copy_rate(const Traces& traces, int from, int to) {
  int matches = 0, total = 0;
  for (std::size_t t = 1; t < traces.size(); ++t) {
    if (!word_changed(traces, t)) continue;
    ++total;
    if (traces[t][static_cast<std::size_t>(to)] ==
        traces[t - 1][static_cast<std::size_t>(from)])
      ++matches;
  }
  return total ? static_cast<double>(matches) / total : 0.0;
}

// Try to order bits as a counter: LSB toggles most. Returns the fit (the
// fraction of change-cycles whose delta is +1 mod 2^w) and the order.
double counter_fit(const Traces& traces, std::vector<int>* order) {
  const std::size_t width = traces[0].size();
  // Toggle counts.
  std::vector<int> toggles(width, 0);
  for (std::size_t t = 1; t < traces.size(); ++t)
    for (std::size_t b = 0; b < width; ++b)
      if (traces[t][b] != traces[t - 1][b]) ++toggles[b];
  order->resize(width);
  std::iota(order->begin(), order->end(), 0);
  std::stable_sort(order->begin(), order->end(),
                   [&](int a, int b) { return toggles[static_cast<std::size_t>(a)] >
                                               toggles[static_cast<std::size_t>(b)]; });
  if (width > 63) return 0.0;  // value packing limit; words this wide are
                               // never counters in practice

  auto value_at = [&](std::size_t t) {
    std::uint64_t value = 0;
    for (std::size_t k = 0; k < width; ++k)
      value |= static_cast<std::uint64_t>(
                   traces[t][static_cast<std::size_t>((*order)[k])])
               << k;
    return value;
  };
  const std::uint64_t modulus = 1ULL << width;
  int increments = 0, changes = 0;
  for (std::size_t t = 1; t < traces.size(); ++t) {
    if (!word_changed(traces, t)) continue;
    ++changes;
    if ((value_at(t - 1) + 1) % modulus == value_at(t)) ++increments;
  }
  return changes ? static_cast<double>(increments) / changes : 0.0;
}

// Try to find a shift chain: each bit (except the head) copies exactly one
// predecessor with high rate, predecessors distinct, forming one path.
double shift_fit(const Traces& traces, double threshold,
                 std::vector<int>* order) {
  const int width = static_cast<int>(traces[0].size());
  if (width < 2) return 0.0;
  // best_source[j] = bit whose previous value j matches most often.
  std::vector<int> best_source(static_cast<std::size_t>(width), -1);
  std::vector<double> best_rate(static_cast<std::size_t>(width), 0.0);
  for (int j = 0; j < width; ++j) {
    for (int i = 0; i < width; ++i) {
      if (i == j) continue;
      const double rate = copy_rate(traces, i, j);
      if (rate > best_rate[static_cast<std::size_t>(j)]) {
        best_rate[static_cast<std::size_t>(j)] = rate;
        best_source[static_cast<std::size_t>(j)] = i;
      }
    }
  }
  // Accept edges above threshold; they must form a single path covering
  // width-1 edges with distinct sources.
  std::vector<int> successor(static_cast<std::size_t>(width), -1);
  int edges = 0;
  double rate_total = 0.0;
  for (int j = 0; j < width; ++j) {
    const int i = best_source[static_cast<std::size_t>(j)];
    if (i < 0 || best_rate[static_cast<std::size_t>(j)] < threshold) continue;
    if (successor[static_cast<std::size_t>(i)] != -1) return 0.0;  // branch
    successor[static_cast<std::size_t>(i)] = j;
    rate_total += best_rate[static_cast<std::size_t>(j)];
    ++edges;
  }
  if (edges != width - 1) return 0.0;
  // Find the head (no one copies from it into... i.e. the bit that is not
  // anyone's target).
  std::vector<bool> is_target(static_cast<std::size_t>(width), false);
  for (int i = 0; i < width; ++i)
    if (successor[static_cast<std::size_t>(i)] >= 0)
      is_target[static_cast<std::size_t>(
          successor[static_cast<std::size_t>(i)])] = true;
  int head = -1;
  for (int j = 0; j < width; ++j)
    if (!is_target[static_cast<std::size_t>(j)]) {
      if (head != -1) return 0.0;  // two heads: not a single chain
      head = j;
    }
  if (head == -1) return 0.0;  // cycle
  order->clear();
  for (int at = head; at != -1; at = successor[static_cast<std::size_t>(at)])
    order->push_back(at);
  if (static_cast<int>(order->size()) != width) return 0.0;
  return rate_total / edges;
}

}  // namespace

WordAnalysis analyze_word(const nl::Netlist& netlist,
                          const std::vector<std::string>& bit_names,
                          const AnalyzeOptions& options) {
  REBERT_CHECK_MSG(!bit_names.empty(), "empty word");
  REBERT_CHECK(options.cycles >= 8);
  std::vector<nl::GateId> dffs;
  dffs.reserve(bit_names.size());
  for (const std::string& name : bit_names) {
    const auto id = netlist.find(name);
    REBERT_CHECK_MSG(id.has_value(), "no flip-flop named '" << name << "'");
    REBERT_CHECK_MSG(netlist.gate(*id).type == nl::GateType::kDff,
                     "'" << name << "' is not a flip-flop");
    dffs.push_back(*id);
  }

  WordAnalysis analysis;
  analysis.ordered_bits = bit_names;

  const Traces traces = simulate_traces(netlist, dffs, options);
  int changes = 0;
  for (std::size_t t = 1; t < traces.size(); ++t)
    if (word_changed(traces, t)) ++changes;
  analysis.activity =
      static_cast<double>(changes) / static_cast<double>(traces.size() - 1);

  if (changes == 0) {
    analysis.kind = WordKind::kConstant;
    analysis.confidence = 1.0;
    return analysis;
  }
  if (bit_names.size() == 1) {
    analysis.kind = WordKind::kFlag;
    analysis.confidence = 1.0;
    return analysis;
  }

  std::vector<int> counter_order;
  const double counter_score = counter_fit(traces, &counter_order);
  std::vector<int> shift_order;
  const double shift_score =
      shift_fit(traces, options.pattern_threshold, &shift_order);

  auto apply_order = [&](const std::vector<int>& order) {
    std::vector<std::string> ordered;
    ordered.reserve(order.size());
    for (int index : order)
      ordered.push_back(bit_names[static_cast<std::size_t>(index)]);
    analysis.ordered_bits = std::move(ordered);
  };

  if (counter_score >= options.pattern_threshold &&
      counter_score >= shift_score) {
    analysis.kind = WordKind::kCounter;
    analysis.confidence = counter_score;
    apply_order(counter_order);
    return analysis;
  }
  if (shift_score >= options.pattern_threshold) {
    analysis.kind = WordKind::kShiftRegister;
    analysis.confidence = shift_score;
    apply_order(shift_order);
    return analysis;
  }

  // Hold-or-load as a unit: on "hold" cycles nothing in the word changed;
  // a data register holds on a visible fraction of cycles.
  const double hold_fraction = 1.0 - analysis.activity;
  if (hold_fraction > 0.05) {
    analysis.kind = WordKind::kDataRegister;
    analysis.confidence = hold_fraction;
    return analysis;
  }
  analysis.kind = WordKind::kUnknown;
  analysis.confidence = 0.0;
  return analysis;
}

}  // namespace rebert::core
