#include "rebert/tree_code.h"

#include "util/check.h"

namespace rebert::core {

std::vector<std::vector<std::uint8_t>> tree_codes(const nl::ConeTree& tree,
                                                  int width) {
  REBERT_CHECK_MSG(width >= 2 && width % 2 == 0,
                   "tree code width must be positive and even, got "
                       << width);
  std::vector<std::vector<std::uint8_t>> codes(
      tree.nodes.size(), std::vector<std::uint8_t>(
                             static_cast<std::size_t>(width), 0));
  if (tree.nodes.empty()) return codes;

  // DFS carrying the parent's code; children are ordered left-to-right.
  struct Item {
    int node;
    std::vector<std::uint8_t> code;
  };
  std::vector<Item> stack;
  stack.push_back({0, codes[0]});
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    codes[static_cast<std::size_t>(item.node)] = item.code;
    const nl::ConeNode& node = tree.nodes[static_cast<std::size_t>(item.node)];
    for (std::size_t child_pos = 0; child_pos < node.children.size();
         ++child_pos) {
      // Right-shift the parent's code by two and insert the branch marker:
      // '10' for the left (first) child, '01' for the right child. Trees
      // are binary after decomposition; for n-ary nodes every child beyond
      // the first uses the right marker.
      std::vector<std::uint8_t> child_code(
          static_cast<std::size_t>(width), 0);
      for (int b = 0; b + 2 < width; ++b)
        child_code[static_cast<std::size_t>(b + 2)] =
            item.code[static_cast<std::size_t>(b)];
      if (child_pos == 0) {
        child_code[0] = 1;  // '10'
        child_code[1] = 0;
      } else {
        child_code[0] = 0;  // '01'
        child_code[1] = 1;
      }
      stack.push_back({node.children[child_pos], std::move(child_code)});
    }
  }
  return codes;
}

tensor::Tensor tree_codes_tensor(const nl::ConeTree& tree, int width) {
  const auto codes = tree_codes(tree, width);
  tensor::Tensor out({static_cast<int>(codes.size()), width});
  for (std::size_t i = 0; i < codes.size(); ++i)
    for (int b = 0; b < width; ++b)
      out.at(static_cast<int>(i), b) = codes[i][static_cast<std::size_t>(b)];
  return out;
}

std::string code_string(const std::vector<std::uint8_t>& code) {
  std::string out;
  out.reserve(code.size());
  for (std::uint8_t bit : code) out += bit ? '1' : '0';
  return out;
}

}  // namespace rebert::core
