// Behavioural word analysis — one step beyond grouping.
//
// The paper's introduction frames word recovery as a step toward
// "recovering the high-level functionality" of a netlist. This module
// takes a recovered word (a set of flip-flops) and infers, by random
// simulation of the netlist, *what the word is*:
//   * kConstant       — the bits never change,
//   * kCounter        — the word (in some bit order) increments on its
//                       active cycles,
//   * kShiftRegister  — each bit copies a fixed predecessor bit,
//   * kDataRegister   — the word holds or loads as a unit,
//   * kFlag           — a 1-bit word,
//   * kUnknown        — none of the above with confidence.
// For counters and shifters the analysis also *orders* the bits (LSB→MSB /
// shift direction), information the grouping stage does not produce.
// Everything is a heuristic over simulation traces; confidence reports how
// cleanly the best pattern fit.
#pragma once

#include <string>
#include <vector>

#include "nl/netlist.h"

namespace rebert::core {

enum class WordKind {
  kConstant,
  kCounter,
  kShiftRegister,
  kDataRegister,
  kFlag,
  kUnknown,
};

const char* word_kind_name(WordKind kind);

struct AnalyzeOptions {
  int cycles = 256;           // simulation length
  std::uint64_t seed = 4242;  // drives the random input stream
  double input_high_probability = 0.5;
  /// Minimum fraction of (observed) transitions that must fit a pattern.
  double pattern_threshold = 0.85;
};

struct WordAnalysis {
  WordKind kind = WordKind::kUnknown;
  /// For kCounter: inferred LSB..MSB. For kShiftRegister: the shift chain
  /// in copy order. Otherwise: the input order.
  std::vector<std::string> ordered_bits;
  double confidence = 0.0;  // fraction of evidence fitting the pattern
  double activity = 0.0;    // fraction of cycles on which the word changed
};

/// Analyze one word of `netlist`. `bit_names` are DFF names (at least 1).
WordAnalysis analyze_word(const nl::Netlist& netlist,
                          const std::vector<std::string>& bit_names,
                          const AnalyzeOptions& options = {});

}  // namespace rebert::core
