#include "rebert/scoring.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "runtime/parallel_for.h"
#include "runtime/threads.h"
#include "util/check.h"

namespace rebert::core {

ScoreMatrix::ScoreMatrix(int n) : n_(n) {
  REBERT_CHECK_MSG(n >= 1, "score matrix needs at least one bit");
  values_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                 kFiltered);
}

double ScoreMatrix::at(int i, int j) const {
  REBERT_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_);
  return values_[static_cast<std::size_t>(i) * n_ + j];
}

void ScoreMatrix::set(int i, int j, double score) {
  REBERT_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_);
  values_[static_cast<std::size_t>(i) * n_ + j] = score;
  values_[static_cast<std::size_t>(j) * n_ + i] = score;
}

double ScoreMatrix::max_score() const {
  return *std::max_element(values_.begin(), values_.end());
}

double ScoreMatrix::filtered_fraction() const {
  if (n_ < 2) return 0.0;
  long long filtered = 0, total = 0;
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      ++total;
      if (at(i, j) == kFiltered) ++filtered;
    }
  }
  return static_cast<double>(filtered) / static_cast<double>(total);
}

ScoreMatrix build_score_matrix(
    const std::vector<BitSequence>& bits, const FilterOptions& filter,
    const std::function<double(int, int)>& scorer) {
  REBERT_CHECK(!bits.empty());
  ScoreMatrix matrix(static_cast<int>(bits.size()));
  for (int i = 0; i < matrix.size(); ++i) {
    for (int j = i + 1; j < matrix.size(); ++j) {
      if (!passes_filter(bits[static_cast<std::size_t>(i)],
                         bits[static_cast<std::size_t>(j)], filter))
        continue;  // stays kFiltered
      matrix.set(i, j, scorer(i, j));
    }
  }
  return matrix;
}

ScoreMatrix build_score_matrix_with_model(
    const std::vector<BitSequence>& bits, const Tokenizer& tokenizer,
    const FilterOptions& filter, const bert::BertPairClassifier& model,
    PredictionCache* cache) {
  return build_score_matrix(
      bits, filter, [&](int i, int j) {
        const BitSequence& a = bits[static_cast<std::size_t>(i)];
        const BitSequence& b = bits[static_cast<std::size_t>(j)];
        std::uint64_t key = 0;
        if (cache) {
          key = PredictionCache::key_of(a, b);
          double cached = 0.0;
          if (cache->lookup(key, &cached)) return cached;
        }
        const bert::EncodedSequence pair = tokenizer.encode_pair(a, b);
        const double score = model.predict_same_word_probability(pair);
        if (cache) cache->insert(key, score);
        return score;
      });
}

ScoreMatrix score_all_pairs(const std::vector<BitSequence>& bits,
                            const Tokenizer& tokenizer,
                            const FilterOptions& filter,
                            const bert::BertPairClassifier& model,
                            ShardedPredictionCache* cache,
                            const ScoringOptions& options) {
  REBERT_CHECK(!bits.empty());
  const int n = static_cast<int>(bits.size());
  ScoreMatrix matrix(n);

  // Flatten the strict upper triangle into a work list so parallel_for
  // sees one dense index space; (i, j) identifies the only body invocation
  // that may touch matrix cells (i, j)/(j, i).
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(n) *
                static_cast<std::size_t>(n - 1) / 2);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) pairs.emplace_back(i, j);

  const auto score_one = [&](std::int64_t p) {
    const auto [i, j] = pairs[static_cast<std::size_t>(p)];
    const BitSequence& a = bits[static_cast<std::size_t>(i)];
    const BitSequence& b = bits[static_cast<std::size_t>(j)];
    if (!passes_filter(a, b, filter)) return;  // cell stays kFiltered
    std::uint64_t key = 0;
    if (cache) {
      key = PredictionCache::key_of(a, b);
      double cached = 0.0;
      if (cache->lookup(key, &cached)) {
        matrix.set(i, j, cached);
        return;
      }
    }
    const bert::EncodedSequence encoded = tokenizer.encode_pair(a, b);
    const double score = model.predict_same_word_probability(encoded);
    if (cache) cache->insert(key, score);
    matrix.set(i, j, score);
  };

  runtime::ParallelForOptions schedule;
  schedule.grain = std::max(1, options.grain);
  schedule.cancel = options.cancel;
  const std::int64_t total = static_cast<std::int64_t>(pairs.size());
  const int threads = options.num_threads == 1
                          ? 1
                          : runtime::resolve_thread_count(options.num_threads);
  if (threads <= 1 && options.pool == nullptr) {
    runtime::serial_for(0, total, score_one, schedule);
  } else if (options.pool != nullptr) {
    runtime::parallel_for(*options.pool, 0, total, score_one, schedule);
  } else {
    // The calling thread participates in parallel_for, so a transient pool
    // needs one fewer worker to land on `threads` scoring threads total.
    runtime::ThreadPool pool(std::max(1, threads - 1));
    runtime::parallel_for(pool, 0, total, score_one, schedule);
  }
  return matrix;
}

}  // namespace rebert::core
