#include "rebert/scoring.h"

#include <algorithm>

#include "util/check.h"

namespace rebert::core {

ScoreMatrix::ScoreMatrix(int n) : n_(n) {
  REBERT_CHECK_MSG(n >= 1, "score matrix needs at least one bit");
  values_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                 kFiltered);
}

double ScoreMatrix::at(int i, int j) const {
  REBERT_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_);
  return values_[static_cast<std::size_t>(i) * n_ + j];
}

void ScoreMatrix::set(int i, int j, double score) {
  REBERT_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_);
  values_[static_cast<std::size_t>(i) * n_ + j] = score;
  values_[static_cast<std::size_t>(j) * n_ + i] = score;
}

double ScoreMatrix::max_score() const {
  return *std::max_element(values_.begin(), values_.end());
}

double ScoreMatrix::filtered_fraction() const {
  if (n_ < 2) return 0.0;
  long long filtered = 0, total = 0;
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      ++total;
      if (at(i, j) == kFiltered) ++filtered;
    }
  }
  return static_cast<double>(filtered) / static_cast<double>(total);
}

ScoreMatrix build_score_matrix(
    const std::vector<BitSequence>& bits, const FilterOptions& filter,
    const std::function<double(int, int)>& scorer) {
  REBERT_CHECK(!bits.empty());
  ScoreMatrix matrix(static_cast<int>(bits.size()));
  for (int i = 0; i < matrix.size(); ++i) {
    for (int j = i + 1; j < matrix.size(); ++j) {
      if (!passes_filter(bits[static_cast<std::size_t>(i)],
                         bits[static_cast<std::size_t>(j)], filter))
        continue;  // stays kFiltered
      matrix.set(i, j, scorer(i, j));
    }
  }
  return matrix;
}

ScoreMatrix build_score_matrix_with_model(
    const std::vector<BitSequence>& bits, const Tokenizer& tokenizer,
    const FilterOptions& filter, bert::BertPairClassifier& model,
    PredictionCache* cache) {
  return build_score_matrix(
      bits, filter, [&](int i, int j) {
        const BitSequence& a = bits[static_cast<std::size_t>(i)];
        const BitSequence& b = bits[static_cast<std::size_t>(j)];
        std::uint64_t key = 0;
        if (cache) {
          key = PredictionCache::key_of(a, b);
          double cached = 0.0;
          if (cache->lookup(key, &cached)) return cached;
        }
        const bert::EncodedSequence pair = tokenizer.encode_pair(a, b);
        const double score = model.predict_same_word_probability(pair);
        if (cache) cache->insert(key, score);
        return score;
      });
}

}  // namespace rebert::core
