// Pairwise score matrix (§II-C/D, Fig. 1(d) input).
//
// score(i,j) = P(same word | bits i, j) from the model, or kFiltered (-1)
// when the Jaccard pre-filter rejects the pair. The matrix is symmetric
// with a kFiltered diagonal (self-pairs are never scored).
#pragma once

#include <functional>
#include <vector>

#include "bert/model.h"
#include "rebert/filter.h"
#include "rebert/prediction_cache.h"
#include "rebert/tokenizer.h"
#include "runtime/latch.h"
#include "runtime/thread_pool.h"

namespace rebert::core {

class ScoreMatrix {
 public:
  static constexpr double kFiltered = -1.0;

  explicit ScoreMatrix(int n);

  int size() const { return n_; }
  double at(int i, int j) const;
  void set(int i, int j, double score);  // symmetric write

  /// Maximum entry (filtered cells included as -1); -1 when fully filtered.
  double max_score() const;

  /// Fraction of strict-upper-triangle pairs that were filtered.
  double filtered_fraction() const;

 private:
  int n_;
  std::vector<double> values_;
};

/// Scores every pair with `scorer` unless the filter rejects it first.
/// `scorer(i, j)` is only invoked for surviving pairs.
ScoreMatrix build_score_matrix(
    const std::vector<BitSequence>& bits, const FilterOptions& filter,
    const std::function<double(int, int)>& scorer);

/// Convenience: model-backed scoring through Tokenizer::encode_pair.
/// When `cache` is non-null, identical (generalized) sequence pairs reuse
/// previous predictions — lossless, since inference is deterministic.
ScoreMatrix build_score_matrix_with_model(
    const std::vector<BitSequence>& bits, const Tokenizer& tokenizer,
    const FilterOptions& filter, const bert::BertPairClassifier& model,
    PredictionCache* cache = nullptr);

/// Scheduling knobs for score_all_pairs.
struct ScoringOptions {
  /// Worker threads; 1 = serial, 0 = resolve from REBERT_THREADS /
  /// hardware (runtime::resolve_thread_count).
  int num_threads = 1;
  /// Candidate pairs per scheduling chunk (see runtime/parallel_for.h).
  int grain = 32;
  /// Reuse an existing pool (e.g. the serve engine's) instead of spinning
  /// up a transient one. When null and more than one thread is resolved, a
  /// pool is created for the call.
  runtime::ThreadPool* pool = nullptr;
  /// Cooperative cancellation / deadline token, polled between scheduling
  /// chunks (see runtime/parallel_for.h). When it fires mid-sweep the call
  /// throws runtime::CancelledError — how the serve engine bounds a
  /// recover request to its deadline_ms.
  runtime::CancellationToken* cancel = nullptr;
};

/// Score every candidate pair of `bits` — the O(bits²) hot path of the
/// whole pipeline — fanning surviving pairs out across worker threads.
///
/// Determinism: the output is bit-identical at any thread count. Each of
/// the n(n-1)/2 pair slots is computed by exactly one body invocation that
/// writes only its own matrix cell, the model is read-only during
/// inference, and cache hits are lossless (same key -> same score), so
/// scheduling order cannot change a single bit of the result. Enforced by
/// tests/runtime/scoring_parallel_test.cc at 1, 2, and 8 threads.
ScoreMatrix score_all_pairs(const std::vector<BitSequence>& bits,
                            const Tokenizer& tokenizer,
                            const FilterOptions& filter,
                            const bert::BertPairClassifier& model,
                            ShardedPredictionCache* cache = nullptr,
                            const ScoringOptions& options = {});

}  // namespace rebert::core
