// Pairwise score matrix (§II-C/D, Fig. 1(d) input).
//
// score(i,j) = P(same word | bits i, j) from the model, or kFiltered (-1)
// when the Jaccard pre-filter rejects the pair. The matrix is symmetric
// with a kFiltered diagonal (self-pairs are never scored).
#pragma once

#include <functional>
#include <vector>

#include "bert/model.h"
#include "rebert/filter.h"
#include "rebert/prediction_cache.h"
#include "rebert/tokenizer.h"

namespace rebert::core {

class ScoreMatrix {
 public:
  static constexpr double kFiltered = -1.0;

  explicit ScoreMatrix(int n);

  int size() const { return n_; }
  double at(int i, int j) const;
  void set(int i, int j, double score);  // symmetric write

  /// Maximum entry (filtered cells included as -1); -1 when fully filtered.
  double max_score() const;

  /// Fraction of strict-upper-triangle pairs that were filtered.
  double filtered_fraction() const;

 private:
  int n_;
  std::vector<double> values_;
};

/// Scores every pair with `scorer` unless the filter rejects it first.
/// `scorer(i, j)` is only invoked for surviving pairs.
ScoreMatrix build_score_matrix(
    const std::vector<BitSequence>& bits, const FilterOptions& filter,
    const std::function<double(int, int)>& scorer);

/// Convenience: model-backed scoring through Tokenizer::encode_pair.
/// When `cache` is non-null, identical (generalized) sequence pairs reuse
/// previous predictions — lossless, since inference is deterministic.
ScoreMatrix build_score_matrix_with_model(
    const std::vector<BitSequence>& bits, const Tokenizer& tokenizer,
    const FilterOptions& filter, bert::BertPairClassifier& model,
    PredictionCache* cache = nullptr);

}  // namespace rebert::core
