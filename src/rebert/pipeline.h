// End-to-end ReBERT pipeline (Fig. 1).
//
// Bundles tokenizer, Jaccard filter, trained model, and word generation
// into the one call a user wants: netlist in, word labels out. Also hosts
// the experiment driver used by the Table II/III benches: train a model
// under leave-one-out CV and evaluate ARI per benchmark per R-Index.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bert/model.h"
#include "bert/trainer.h"
#include "metrics/clustering.h"
#include "rebert/dataset.h"
#include "rebert/filter.h"
#include "rebert/grouping.h"
#include "rebert/scoring.h"
#include "rebert/tokenizer.h"

namespace rebert::core {

struct PipelineOptions {
  TokenizerOptions tokenizer;
  FilterOptions filter;
  GroupingOptions grouping;
  /// Memoize predictions on identical generalized sequence pairs
  /// (lossless; see prediction_cache.h). The cache lives for one
  /// recover_words() call unless `external_cache` is set.
  bool use_prediction_cache = true;
  /// Caller-owned cache to reuse across calls (e.g. warm-started from an
  /// RBPC snapshot via persist/cache_io.h). Null = per-call cache. Only
  /// consulted when use_prediction_cache is true; hits are lossless, so
  /// recovered labels are identical warm or cold.
  ShardedPredictionCache* external_cache = nullptr;
  /// Worker threads for the pairwise-scoring hot path (see
  /// core::score_all_pairs): 1 = serial, 0 = REBERT_THREADS / hardware,
  /// n > 1 = exactly n. The recovered labels are bit-identical at any
  /// value — threading only changes wall-clock time.
  int num_threads = 1;
};

struct RecoveryResult {
  std::vector<int> labels;        // predicted word label per bit
  int num_words = 0;
  double filtered_fraction = 0.0; // Jaccard-filtered pairs
  double cache_hit_rate = 0.0;    // of pairs that reached the model
  double tokenize_seconds = 0.0;
  double scoring_seconds = 0.0;
  double grouping_seconds = 0.0;
  double total_seconds = 0.0;
};

/// ReBERT inference: recover word labels for every bit of `netlist` using a
/// trained pair classifier.
RecoveryResult recover_words(const nl::Netlist& netlist,
                             bert::BertPairClassifier& model,
                             const PipelineOptions& options);

/// Full artifacts of one recovery: the bit universe, tokenized sequences,
/// the score matrix (what report.h consumes), and the summary result.
struct RecoveryArtifacts {
  std::vector<nl::Bit> bits;
  std::vector<BitSequence> sequences;
  ScoreMatrix scores{1};
  RecoveryResult result;
};
RecoveryArtifacts recover_words_detailed(const nl::Netlist& netlist,
                                         bert::BertPairClassifier& model,
                                         const PipelineOptions& options);

/// Configuration of one full experiment run (Table II / Table III).
struct ExperimentOptions {
  PipelineOptions pipeline;
  DatasetOptions dataset;
  bert::TrainOptions training;
  int model_hidden = 64;        // eval profile; see bert::eval_config
  int model_layers = 2;
  int model_heads = 4;
  std::uint64_t corruption_seed = 77;  // test-time corruption stream
};

/// Builds the BertConfig implied by ExperimentOptions (vocab and sequence
/// length derived from the tokenizer settings).
bert::BertConfig make_model_config(const ExperimentOptions& options);

/// Train a ReBERT model on the given circuits (the LOO training half).
std::unique_ptr<bert::BertPairClassifier> train_rebert(
    const std::vector<const CircuitData*>& train_circuits,
    const ExperimentOptions& options);

/// Evaluate a trained model on one circuit at one R-Index: corrupt, recover
/// words, return ARI against ground truth (plus the runtime breakdown).
struct EvaluationResult {
  double ari = 0.0;
  RecoveryResult recovery;
};
EvaluationResult evaluate_rebert(const CircuitData& circuit, double r_index,
                                 bert::BertPairClassifier& model,
                                 const ExperimentOptions& options);

}  // namespace rebert::core
