#include "rebert/prediction_cache.h"

namespace rebert::core {

namespace {
inline std::uint64_t fnv_step(std::uint64_t h, std::uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

std::uint64_t hash_sequence(std::uint64_t seed, const BitSequence& seq) {
  std::uint64_t h = fnv_step(seed, static_cast<std::uint64_t>(
                                       seq.token_ids.size()));
  for (int token : seq.token_ids)
    h = fnv_step(h, static_cast<std::uint64_t>(token));
  for (const auto& code : seq.tree_codes) {
    // Pack the 0/1 code bits into words to keep hashing cheap.
    std::uint64_t packed = 0;
    int used = 0;
    for (std::uint8_t bit : code) {
      packed = (packed << 1) | bit;
      if (++used == 64) {
        h = fnv_step(h, packed);
        packed = 0;
        used = 0;
      }
    }
    h = fnv_step(h, packed ^ static_cast<std::uint64_t>(used));
  }
  return h;
}

std::uint64_t PredictionCache::key_of(const BitSequence& a,
                                      const BitSequence& b) {
  return hash_sequence(hash_sequence(0x5eedULL, a) * 0x100000001b3ULL, b);
}

bool PredictionCache::lookup(std::uint64_t key, double* score) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  if (score) *score = it->second;
  return true;
}

void PredictionCache::insert(std::uint64_t key, double score) {
  entries_.emplace(key, score);
}

void PredictionCache::clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace rebert::core
