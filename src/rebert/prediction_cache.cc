#include "rebert/prediction_cache.h"

#include <algorithm>

#include "util/check.h"

namespace rebert::core {

namespace {

inline std::uint64_t fnv_step(std::uint64_t h, std::uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

inline std::uint64_t round_up_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t hash_sequence(std::uint64_t seed, const BitSequence& seq) {
  std::uint64_t h = fnv_step(seed, static_cast<std::uint64_t>(
                                       seq.token_ids.size()));
  for (int token : seq.token_ids)
    h = fnv_step(h, static_cast<std::uint64_t>(token));
  for (const auto& code : seq.tree_codes) {
    // Pack the 0/1 code bits into words to keep hashing cheap.
    std::uint64_t packed = 0;
    int used = 0;
    for (std::uint8_t bit : code) {
      packed = (packed << 1) | bit;
      if (++used == 64) {
        h = fnv_step(h, packed);
        packed = 0;
        used = 0;
      }
    }
    h = fnv_step(h, packed ^ static_cast<std::uint64_t>(used));
  }
  return h;
}

std::uint64_t PredictionCache::key_of(const BitSequence& a,
                                      const BitSequence& b) {
  return hash_sequence(hash_sequence(0x5eedULL, a) * 0x100000001b3ULL, b);
}

bool PredictionCache::lookup(std::uint64_t key, double* score) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.record_miss();
    return false;
  }
  stats_.record_hit();
  if (score) *score = it->second;
  return true;
}

void PredictionCache::insert(std::uint64_t key, double score) {
  entries_.emplace(key, score);
}

std::vector<std::pair<std::uint64_t, double>>
PredictionCache::export_entries() const {
  std::vector<std::pair<std::uint64_t, double>> out(entries_.begin(),
                                                    entries_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t PredictionCache::import_entries(
    const std::vector<std::pair<std::uint64_t, double>>& entries) {
  std::size_t inserted = 0;
  for (const auto& [key, score] : entries)
    if (entries_.emplace(key, score).second) ++inserted;
  return inserted;
}

void PredictionCache::clear() {
  entries_.clear();
  stats_.reset();
}

ShardedPredictionCache::ShardedPredictionCache(int shards) {
  if (shards <= 0) shards = 64;
  const std::uint64_t n =
      round_up_pow2(static_cast<std::uint64_t>(shards));
  shards_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
  shard_mask_ = n - 1;
}

ShardedPredictionCache::Shard& ShardedPredictionCache::shard_for(
    std::uint64_t key) const {
  // Fibonacci-mix the key before masking: keys are already hashes, but
  // the low bits of closely related sequences correlate; one multiply
  // spreads them across shards.
  const std::uint64_t mixed = key * 0x9e3779b97f4a7c15ULL;
  return *shards_[(mixed >> 32) & shard_mask_];
}

bool ShardedPredictionCache::lookup(std::uint64_t key, double* score) const {
  Shard& shard = shard_for(key);
  {
    util::MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (score) *score = it->second;
      stats_.record_hit();
      return true;
    }
  }
  // Shards hold what this process learned; the warm tier holds what a
  // snapshot knew. A tier hit is a real cache hit — the caller skips the
  // forward and never inserts, so warmed keys stay tier-only.
  const ScoreTier* tier = warm_tier_.load(std::memory_order_acquire);
  if (tier != nullptr && tier->lookup(key, score)) {
    stats_.record_hit();
    return true;
  }
  stats_.record_miss();
  return false;
}

void ShardedPredictionCache::insert(std::uint64_t key, double score) {
  Shard& shard = shard_for(key);
  util::MutexLock lock(shard.mu);
  // emplace keeps the first value on duplicate keys; racing inserts carry
  // identical scores (deterministic inference), so either winning is fine.
  shard.entries.emplace(key, score);
}

std::size_t ShardedPredictionCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    total += shard->entries.size();
  }
  const ScoreTier* tier = warm_tier_.load(std::memory_order_acquire);
  if (tier != nullptr) total += tier->size();
  return total;
}

std::vector<std::pair<std::uint64_t, double>>
ShardedPredictionCache::export_entries() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(size());
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    out.insert(out.end(), shard->entries.begin(), shard->entries.end());
  }
  std::sort(out.begin(), out.end());
  // Merge the warm tier underneath: shard entries win on key collision
  // (they are this process's own results; on collision the values are
  // identical anyway — inference is deterministic).
  const ScoreTier* tier = warm_tier_.load(std::memory_order_acquire);
  if (tier != nullptr) {
    std::vector<std::pair<std::uint64_t, double>> tier_entries;
    tier->append_entries(&tier_entries);
    const std::size_t shard_end = out.size();
    for (const auto& entry : tier_entries) {
      const auto at = std::lower_bound(
          out.begin(), out.begin() + static_cast<std::ptrdiff_t>(shard_end),
          entry.first, [](const std::pair<std::uint64_t, double>& have,
                          std::uint64_t key) { return have.first < key; });
      if (at == out.begin() + static_cast<std::ptrdiff_t>(shard_end) ||
          at->first != entry.first)
        out.push_back(entry);
    }
    std::sort(out.begin(), out.end());
  }
  return out;
}

void ShardedPredictionCache::attach_warm_tier(
    std::shared_ptr<const ScoreTier> tier) {
  util::MutexLock lock(tier_mu_);
  const ScoreTier* raw = tier.get();
  if (tier != nullptr) tier_owners_.push_back(std::move(tier));
  warm_tier_.store(raw, std::memory_order_release);
}

std::size_t ShardedPredictionCache::import_entries(
    const std::vector<std::pair<std::uint64_t, double>>& entries) {
  std::size_t inserted = 0;
  for (const auto& [key, score] : entries) {
    Shard& shard = shard_for(key);
    util::MutexLock lock(shard.mu);
    if (shard.entries.emplace(key, score).second) ++inserted;
  }
  return inserted;
}

void ShardedPredictionCache::clear() {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    shard->entries.clear();
  }
  // Detach (but keep alive) any warm tier: a concurrent reader may still
  // hold the old pointer, and the owners vector guarantees its pointee.
  warm_tier_.store(nullptr, std::memory_order_release);
  stats_.reset();
}

}  // namespace rebert::core
