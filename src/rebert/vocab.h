// Token vocabulary (§II-A-2).
//
// Tokens are gate-type mnemonics plus the generalized leaf token 'X' (the
// paper deliberately erases leaf signal names: "the specific names
// contribute minimally to prediction accuracy but introduce unnecessary
// complexity into the vocabulary") and the BERT special tokens.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "nl/gate.h"

namespace rebert::core {

class Vocabulary {
 public:
  /// Fixed vocabulary: specials, 'X', then every gate-type mnemonic.
  Vocabulary();

  int pad_id() const { return pad_id_; }
  int cls_id() const { return cls_id_; }
  int sep_id() const { return sep_id_; }
  int unk_id() const { return unk_id_; }
  int leaf_id() const { return leaf_id_; }  // the 'X' token

  int size() const { return static_cast<int>(tokens_.size()); }

  /// Token id for a gate type (internal tree nodes).
  int gate_id(nl::GateType type) const;

  /// Token id by text; unknown text maps to [UNK].
  int id_of(const std::string& token) const;

  /// Token text by id.
  const std::string& token(int id) const;

  bool is_special(int id) const {
    return id == pad_id_ || id == cls_id_ || id == sep_id_ || id == unk_id_;
  }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
  std::vector<int> gate_ids_;  // indexed by GateType
  int pad_id_, cls_id_, sep_id_, unk_id_, leaf_id_;
};

/// The process-wide vocabulary (it is fixed, so sharing is safe).
const Vocabulary& vocabulary();

}  // namespace rebert::core
