#include "rebert/pipeline.h"

#include <functional>

#include "nl/corruption.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rebert::core {

RecoveryArtifacts recover_words_detailed(const nl::Netlist& netlist,
                                         bert::BertPairClassifier& model,
                                         const PipelineOptions& options) {
  RecoveryArtifacts artifacts;
  RecoveryResult& result = artifacts.result;
  util::WallTimer total;

  const Tokenizer tokenizer(options.tokenizer);
  util::WallTimer phase;
  artifacts.bits = nl::extract_bits(netlist);
  artifacts.sequences = tokenizer.tokenize_bits(netlist);
  result.tokenize_seconds = phase.seconds();
  REBERT_CHECK_MSG(!artifacts.sequences.empty(),
                   "netlist has no sequential elements");

  phase.reset();
  ShardedPredictionCache local_cache;
  ShardedPredictionCache* cache =
      options.external_cache ? options.external_cache : &local_cache;
  ScoringOptions scoring;
  scoring.num_threads = options.num_threads;
  artifacts.scores = score_all_pairs(
      artifacts.sequences, tokenizer, options.filter, model,
      options.use_prediction_cache ? cache : nullptr, scoring);
  result.scoring_seconds = phase.seconds();
  result.filtered_fraction = artifacts.scores.filtered_fraction();
  result.cache_hit_rate = cache->hit_rate();

  phase.reset();
  result.labels = group_words(artifacts.scores, options.grouping);
  result.grouping_seconds = phase.seconds();

  result.num_words = metrics::num_clusters(result.labels);
  result.total_seconds = total.seconds();
  return artifacts;
}

RecoveryResult recover_words(const nl::Netlist& netlist,
                             bert::BertPairClassifier& model,
                             const PipelineOptions& options) {
  return recover_words_detailed(netlist, model, options).result;
}

bert::BertConfig make_model_config(const ExperimentOptions& options) {
  bert::BertConfig config;
  config.vocab_size = vocabulary().size();
  config.hidden = options.model_hidden;
  config.num_layers = options.model_layers;
  config.num_heads = options.model_heads;
  config.intermediate = options.model_hidden * 4;
  config.max_seq_len = options.pipeline.tokenizer.max_seq_len;
  config.tree_code_dim = options.pipeline.tokenizer.tree_code_dim;
  config.validate();
  return config;
}

std::unique_ptr<bert::BertPairClassifier> train_rebert(
    const std::vector<const CircuitData*>& train_circuits,
    const ExperimentOptions& options) {
  DatasetOptions dataset_options = options.dataset;
  dataset_options.tokenizer = options.pipeline.tokenizer;
  const std::vector<bert::LabeledExample> examples =
      build_training_set(train_circuits, dataset_options);
  REBERT_CHECK_MSG(!examples.empty(), "empty training set");
  LOG_INFO << "training ReBERT on " << examples.size() << " pair examples";

  auto model = std::make_unique<bert::BertPairClassifier>(
      make_model_config(options));
  bert::train(*model, examples, options.training);
  return model;
}

EvaluationResult evaluate_rebert(const CircuitData& circuit, double r_index,
                                 bert::BertPairClassifier& model,
                                 const ExperimentOptions& options) {
  nl::CorruptionOptions corrupt_options;
  corrupt_options.r_index = r_index;
  corrupt_options.seed = options.corruption_seed ^
                         std::hash<std::string>{}(circuit.name);
  const nl::Netlist variant =
      r_index == 0.0 ? circuit.netlist
                     : nl::corrupt_netlist(circuit.netlist, corrupt_options);

  EvaluationResult result;
  result.recovery = recover_words(variant, model, options.pipeline);

  const std::vector<nl::Bit> bits = nl::extract_bits(variant);
  const std::vector<int> truth = circuit.words.labels_for(bits);
  result.ari = metrics::adjusted_rand_index(truth, result.recovery.labels);
  return result;
}

}  // namespace rebert::core
