// Jaccard pre-filter (§II-C).
//
// Before invoking the model, ReBERT discards pairs whose token sequences
// are too dissimilar: pairs with Jaccard similarity below 0.7 get score -1.
// With the generalized 'X' leaves the token *set* is tiny, so we use the
// bag (multiset) Jaccard — sum of per-token min counts over sum of max
// counts — which preserves the intended behaviour (similar gate-type
// compositions pass; different compositions are cut).
#pragma once

#include <vector>

#include "rebert/tokenizer.h"

namespace rebert::core {

struct FilterOptions {
  double threshold = 0.7;  // the paper's cut-off
  bool enabled = true;
};

/// Bag Jaccard over two token-id sequences in [0, 1]. Both empty -> 1.
double jaccard_similarity(const std::vector<int>& a,
                          const std::vector<int>& b);

/// True when the pair should be scored by the model (similarity >=
/// threshold), false when it should be filtered to score -1.
bool passes_filter(const BitSequence& a, const BitSequence& b,
                   const FilterOptions& options);

}  // namespace rebert::core
