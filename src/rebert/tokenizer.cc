#include "rebert/tokenizer.h"

#include "runtime/fault_injector.h"
#include "util/check.h"

namespace rebert::core {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  REBERT_CHECK_MSG(options_.backtrace_depth >= 1, "depth must be >= 1");
  REBERT_CHECK_MSG(options_.tree_code_dim >= 2 &&
                       options_.tree_code_dim % 2 == 0,
                   "tree_code_dim must be positive and even");
  REBERT_CHECK_MSG(options_.max_seq_len >= 8, "max_seq_len too small");
  REBERT_CHECK_MSG(options_.pad_to >= 0 &&
                       options_.pad_to <= options_.max_seq_len,
                   "pad_to must be within [0, max_seq_len]");
}

BitSequence Tokenizer::tokenize_net(const nl::Netlist& netlist,
                                    nl::GateId net) const {
  const nl::ConeTree tree =
      nl::extract_cone(netlist, net, options_.backtrace_depth);
  const auto codes = tree_codes(tree, options_.tree_code_dim);
  const Vocabulary& vocab = vocabulary();

  BitSequence seq;
  seq.tree_size = tree.size();
  seq.tree_depth = tree.depth;
  seq.token_ids.reserve(tree.nodes.size());
  seq.tree_codes.reserve(tree.nodes.size());
  // ConeTree stores nodes in pre-order already (asserted by its tests).
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    const nl::ConeNode& node = tree.nodes[i];
    int id;
    if (node.is_leaf) {
      id = options_.generalize_leaves ? vocab.leaf_id()
                                      : vocab.gate_id(node.type);
    } else {
      id = vocab.gate_id(node.type);
    }
    seq.token_ids.push_back(id);
    seq.tree_codes.push_back(codes[i]);
  }
  return seq;
}

std::vector<BitSequence> Tokenizer::tokenize_bits(
    const nl::Netlist& netlist) const {
  std::vector<BitSequence> out;
  const std::vector<nl::Bit> bits = nl::extract_bits(netlist);
  out.reserve(bits.size());
  for (const nl::Bit& bit : bits)
    out.push_back(tokenize_net(netlist, bit.d_net));
  return out;
}

bert::EncodedSequence Tokenizer::encode_pair(const BitSequence& a,
                                             const BitSequence& b) const {
  // Chaos site: a failing encode (corrupt sequence, future vocab skew)
  // surfaces on the per-request path only — tokenize_bits (bench loading)
  // stays untouched, so an armed site degrades requests, not startup.
  runtime::FaultInjector::global().maybe_throw("tokenizer.encode");
  const Vocabulary& vocab = vocabulary();
  const int width = options_.tree_code_dim;
  const std::vector<std::uint8_t> zero_code(
      static_cast<std::size_t>(width), 0);

  // [CLS] a [SEP] b [SEP]; truncate each half evenly if over budget.
  const int budget = options_.max_seq_len - 3;
  REBERT_CHECK(budget >= 2);
  int take_a = static_cast<int>(a.token_ids.size());
  int take_b = static_cast<int>(b.token_ids.size());
  if (take_a + take_b > budget) {
    // Proportional truncation, at least one token each.
    const double scale =
        static_cast<double>(budget) / static_cast<double>(take_a + take_b);
    take_a = std::max(1, static_cast<int>(take_a * scale));
    take_b = std::max(1, std::min(budget - take_a, take_b));
  }

  bert::EncodedSequence encoded;
  std::vector<std::vector<std::uint8_t>> codes;
  auto push = [&](int token_id, const std::vector<std::uint8_t>& code) {
    encoded.token_ids.push_back(token_id);
    codes.push_back(code);
  };
  push(vocab.cls_id(), zero_code);
  for (int i = 0; i < take_a; ++i)
    push(a.token_ids[static_cast<std::size_t>(i)],
         a.tree_codes[static_cast<std::size_t>(i)]);
  push(vocab.sep_id(), zero_code);
  for (int i = 0; i < take_b; ++i)
    push(b.token_ids[static_cast<std::size_t>(i)],
         b.tree_codes[static_cast<std::size_t>(i)]);
  push(vocab.sep_id(), zero_code);

  if (options_.pad_to > 0 &&
      static_cast<int>(encoded.token_ids.size()) < options_.pad_to) {
    encoded.valid_len = static_cast<int>(encoded.token_ids.size());
    while (static_cast<int>(encoded.token_ids.size()) < options_.pad_to)
      push(vocab.pad_id(), zero_code);
  }

  const int n = static_cast<int>(encoded.token_ids.size());
  encoded.position_ids.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    encoded.position_ids[static_cast<std::size_t>(i)] = i;
  encoded.tree_codes = tensor::Tensor({n, width});
  for (int i = 0; i < n; ++i)
    for (int bpos = 0; bpos < width; ++bpos)
      encoded.tree_codes.at(i, bpos) =
          codes[static_cast<std::size_t>(i)][static_cast<std::size_t>(bpos)];
  return encoded;
}

std::string Tokenizer::decode(const std::vector<int>& token_ids) {
  const Vocabulary& vocab = vocabulary();
  std::string out;
  for (std::size_t i = 0; i < token_ids.size(); ++i) {
    if (i) out += ' ';
    out += vocab.token(token_ids[i]);
  }
  return out;
}

}  // namespace rebert::core
