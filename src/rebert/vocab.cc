#include "rebert/vocab.h"

#include "util/check.h"

namespace rebert::core {

Vocabulary::Vocabulary() {
  auto add = [this](const std::string& token) {
    const int id = static_cast<int>(tokens_.size());
    tokens_.push_back(token);
    ids_.emplace(token, id);
    return id;
  };
  pad_id_ = add("[PAD]");
  cls_id_ = add("[CLS]");
  sep_id_ = add("[SEP]");
  unk_id_ = add("[UNK]");
  leaf_id_ = add("X");
  gate_ids_.resize(static_cast<std::size_t>(nl::kNumGateTypes), unk_id_);
  for (int t = 0; t < nl::kNumGateTypes; ++t) {
    const nl::GateType type = static_cast<nl::GateType>(t);
    gate_ids_[static_cast<std::size_t>(t)] = add(nl::gate_type_name(type));
  }
}

int Vocabulary::gate_id(nl::GateType type) const {
  const int t = static_cast<int>(type);
  REBERT_CHECK(t >= 0 && t < nl::kNumGateTypes);
  return gate_ids_[static_cast<std::size_t>(t)];
}

int Vocabulary::id_of(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? unk_id_ : it->second;
}

const std::string& Vocabulary::token(int id) const {
  REBERT_CHECK_MSG(id >= 0 && id < size(), "token id " << id
                                                       << " out of range");
  return tokens_[static_cast<std::size_t>(id)];
}

const Vocabulary& vocabulary() {
  static const Vocabulary vocab;
  return vocab;
}

}  // namespace rebert::core
