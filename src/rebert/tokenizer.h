// Bit tokenization and pair-sequence encoding (§II-A, Fig. 2).
//
// For every bit (a net feeding a sequential element) the tokenizer:
//   1. backtraces `depth` levels through the (2-input-decomposed) netlist
//      to build the bit's binary fan-in tree,
//   2. emits the pre-order token sequence (gate mnemonics; leaves
//      generalized to 'X'),
//   3. records each token's tree-position code (§II-B-3).
// encode_pair() concatenates two bit sequences into the model input:
// [CLS] tokens(a) [SEP] tokens(b) [SEP], sequential positions 0..n-1, and
// per-token tree codes (all-zero for the special tokens).
#pragma once

#include <string>
#include <vector>

#include "bert/embedding.h"
#include "nl/cone.h"
#include "nl/netlist.h"
#include "nl/words.h"
#include "rebert/tree_code.h"
#include "rebert/vocab.h"

namespace rebert::core {

struct TokenizerOptions {
  int backtrace_depth = 6;      // the paper's k = 6
  int tree_code_dim = 32;       // must match BertConfig::tree_code_dim
  int max_seq_len = 512;        // pair sequences are truncated to this
  bool generalize_leaves = true;
  /// Pad every pair sequence up to this length with [PAD] tokens (the
  /// paper pads to a uniform length for batch compatibility; §II-A-3).
  /// 0 = no padding. Must be <= max_seq_len. Predictions are unchanged by
  /// padding — attention masks [PAD] positions (verified by tests).
  int pad_to = 0;
};

/// Tokenized representation of one bit.
struct BitSequence {
  std::vector<int> token_ids;                       // pre-order tokens
  std::vector<std::vector<std::uint8_t>> tree_codes;  // aligned with tokens
  int tree_size = 0;
  int tree_depth = 0;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  const TokenizerOptions& options() const { return options_; }

  /// Tokenize the fan-in cone of `net` (normally a Bit::d_net). The netlist
  /// must already be 2-input decomposed for faithful binary trees; wide
  /// gates simply yield n-ary pre-order traversals otherwise.
  BitSequence tokenize_net(const nl::Netlist& netlist, nl::GateId net) const;

  /// Tokenize every bit of the netlist in extract_bits() order.
  std::vector<BitSequence> tokenize_bits(const nl::Netlist& netlist) const;

  /// Build the model input for a pair of bits.
  bert::EncodedSequence encode_pair(const BitSequence& a,
                                    const BitSequence& b) const;

  /// Token ids back to text (debugging / the tokenize_demo example).
  static std::string decode(const std::vector<int>& token_ids);

 private:
  TokenizerOptions options_;
};

}  // namespace rebert::core
