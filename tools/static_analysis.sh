#!/usr/bin/env bash
# Static analysis driver: annotation lint, clang-tidy, clang thread-safety
# analysis, sanitizer test-suite runs, netlist lint over every generated
# benchmark, and serving smoke drills.
#
# Usage: tools/static_analysis.sh [--fast]
#                                 [--skip-annotations] [--skip-tidy]
#                                 [--skip-thread-safety] [--skip-sanitizers]
#                                 [--skip-kernels] [--skip-lint]
#                                 [--skip-smoke] [--skip-sharded]
#                                 [--skip-c10k]
#
# --fast runs only the cheap compile-level stages (1-3): annotation lint,
# clang-tidy, and the -Wthread-safety build — the pre-commit loop. The full
# run adds the sanitizer suites and the end-to-end drills.
#
# Stages (each independently skippable):
#   1. tools/check_annotations.sh — bans raw std::mutex & friends outside
#      the annotated util::Mutex wrapper (see DESIGN.md "Locking
#      discipline").
#   2. clang-tidy over src/ and apps/ using a compile_commands.json build
#      (.clang-tidy enables concurrency-* with WarningsAsErrors). Skipped
#      with a notice when clang-tidy is not installed (the container image
#      ships only gcc).
#   3. clang thread-safety capability analysis: a clang++ rebuild of the
#      whole tree with -Wthread-safety -Wthread-safety-beta
#      -Werror=thread-safety-analysis and REBERT_DCHECKS=ON, so every
#      GUARDED_BY / REQUIRES / EXCLUDES annotation is enforced at compile
#      time. Skipped with a notice when clang++ is not installed.
#   4. ASan and UBSan builds of the full test suite, run under ctest, then
#      explicit `ctest -L persist` and `ctest -L chaos` gates in the same
#      build dirs (crash-safety suites: atomic writer, RBPC snapshots,
#      checkpoint truncation, warm-start serving; chaos suites: fault
#      injection, admission control, deadlines, structural degradation,
#      lock-order death tests), plus a TSan build running the `concurrency`
#      and `chaos` labelled tests. Sanitizer builds force REBERT_DCHECKS
#      on, so the runtime lock-order registry is armed during every run.
#   4b. Kernel backend gate: the dispatched SIMD kernels' parity and
#      determinism suite (`ctest -L kernels`) re-run in the ASan and
#      UBSan build dirs with REBERT_KERNELS pinned first to `scalar`,
#      then to `avx2` — an out-of-bounds read in a packed GEMM panel or
#      a UB cast in the exp polynomial must not hide behind whichever
#      backend cpuid happens to pick. The avx2 leg SKIPs gracefully on
#      hosts without AVX2+FMA. (clang-tidy already covers src/kernels
#      through stage 2's sweep of src/.)
#   5. `rebert_cli lint` over every circuitgen benchmark (b03..b18) at
#      R-Index 0 and 0.4. Error-severity diagnostics fail the stage;
#      warnings are reported but tolerated (generated circuits contain
#      intentional dead distractor logic).
#   6. Degraded-serving smoke: `rebert_cli serve` with REBERT_FAULTS
#      hard-failing every model forward must keep answering — recover
#      falls back to the structural baseline and tags the response
#      `degraded=structural`.
#   7. Sharded-serving smoke: `rebert_cli route` supervising two serve
#      backends behind one socket; requests relay through the router,
#      then one backend is SIGKILLed and traffic must still be answered
#      (reroute to the survivor, or the supervisor's respawn).
#   8. Binary warm-start kill drill: snapshots + SIGKILL + supervisor
#      respawn; the respawned backend's first answer must already be warm
#      from the mmap tier (warm_entries > 0, cache_misses = 0).
#   8b. Replica failover smoke: route at --replicas 2, prime a score
#      through the router so the mirror queue warms the secondary, then
#      SIGKILL the bench's primary — the resend must answer ok with ZERO
#      new cache misses on the survivor (the warm-failover acceptance,
#      end to end through the CLI).
#   9. C10K smoke: `bench/serve_overload --connections 1000` parks a
#      thousand idle sockets on the reactor and demands flat thread
#      count, answered traffic within deadline, and a clean stop() —
#      the bench exits non-zero when any of those regress.
#
# Exits non-zero when any stage FAILed; SKIPped stages (missing clang) do
# not fail the run. A PASS/FAIL/SKIP table is printed at the end.
set -u

cd "$(dirname "$0")/.."
ROOT=$(pwd)

RUN_ANNOTATIONS=1
RUN_TIDY=1
RUN_TSAFETY=1
RUN_SAN=1
RUN_KERNELS=1
RUN_LINT=1
RUN_SMOKE=1
RUN_SHARDED=1
RUN_C10K=1
for arg in "$@"; do
  case "$arg" in
    --fast) RUN_SAN=0; RUN_KERNELS=0; RUN_LINT=0; RUN_SMOKE=0; RUN_SHARDED=0; RUN_C10K=0 ;;
    --skip-annotations) RUN_ANNOTATIONS=0 ;;
    --skip-tidy) RUN_TIDY=0 ;;
    --skip-thread-safety) RUN_TSAFETY=0 ;;
    --skip-sanitizers) RUN_SAN=0 ;;
    --skip-kernels) RUN_KERNELS=0 ;;
    --skip-lint) RUN_LINT=0 ;;
    --skip-smoke) RUN_SMOKE=0 ;;
    --skip-sharded) RUN_SHARDED=0 ;;
    --skip-c10k) RUN_C10K=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || echo 2)
FAILURES=0

# Stage ledger for the summary table: record <name> <PASS|FAIL|SKIP>.
STAGE_NAMES=()
STAGE_RESULTS=()
record() {
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("$2")
  [ "$2" = "FAIL" ] && FAILURES=$((FAILURES + 1))
  return 0
}

note() { printf '\n== %s ==\n' "$1"; }

# Build (if needed) and export $CLI, the plain-build rebert_cli binary used
# by the lint and smoke stages. Returns non-zero when the build fails.
ensure_cli() {
  local build=build
  if [ ! -x "$build/apps/rebert_cli" ]; then
    cmake -B "$build" -S . >/dev/null && cmake --build "$build" -j "$JOBS" --target rebert_cli >/dev/null \
      || { echo "failed to build rebert_cli" >&2; return 1; }
  fi
  CLI="$ROOT/$build/apps/rebert_cli"
}

# Build (if needed) and export $OVERLOAD_BENCH, the plain-build
# serve_overload bench used by the C10K smoke.
ensure_overload_bench() {
  local build=build
  if [ ! -x "$build/bench/serve_overload" ]; then
    cmake -B "$build" -S . >/dev/null && cmake --build "$build" -j "$JOBS" --target serve_overload >/dev/null \
      || { echo "failed to build serve_overload" >&2; return 1; }
  fi
  OVERLOAD_BENCH="$ROOT/$build/bench/serve_overload"
}

# ---- 1. annotation lint ----------------------------------------------------
if [ "$RUN_ANNOTATIONS" -eq 1 ]; then
  note "annotation lint (tools/check_annotations.sh)"
  if tools/check_annotations.sh; then
    record annotations PASS
  else
    record annotations FAIL
  fi
fi

# ---- 2. clang-tidy ---------------------------------------------------------
if [ "$RUN_TIDY" -eq 1 ]; then
  note "clang-tidy"
  if command -v clang-tidy >/dev/null 2>&1; then
    TIDY_OK=1
    cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || TIDY_OK=0
    if [ "$TIDY_OK" -eq 1 ]; then
      mapfile -t TIDY_SOURCES < <(find src apps -name '*.cc' | sort)
      if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -p build-tidy -quiet "${TIDY_SOURCES[@]}" || TIDY_OK=0
      else
        clang-tidy -p build-tidy --quiet "${TIDY_SOURCES[@]}" || TIDY_OK=0
      fi
    fi
    [ "$TIDY_OK" -eq 1 ] && record clang-tidy PASS || record clang-tidy FAIL
  else
    echo "clang-tidy not installed; skipping (config: .clang-tidy)"
    record clang-tidy SKIP
  fi
fi

# ---- 3. clang thread-safety analysis ---------------------------------------
# A full rebuild under clang with the capability analysis promoted to an
# error: every GUARDED_BY field read without its lock, every EXCLUDES
# violation, every unannotated acquisition fails the stage. DCHECKS on so
# the debug registry code itself is also compiled and checked.
if [ "$RUN_TSAFETY" -eq 1 ]; then
  note "clang -Wthread-safety"
  if command -v clang++ >/dev/null 2>&1; then
    TSAFETY_OK=1
    TSAFETY_LOG=$(mktemp)
    cmake -B build-tsafety -S . \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DREBERT_DCHECKS=ON \
        -DCMAKE_CXX_FLAGS="-Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis" \
        >/dev/null 2>"$TSAFETY_LOG" || TSAFETY_OK=0
    if [ "$TSAFETY_OK" -eq 1 ]; then
      cmake --build build-tsafety -j "$JOBS" >"$TSAFETY_LOG" 2>&1 || TSAFETY_OK=0
    fi
    if [ "$TSAFETY_OK" -eq 1 ]; then
      echo "thread-safety analysis clean"
      record thread-safety PASS
    else
      grep -E 'thread-safety|error' "$TSAFETY_LOG" | head -40
      record thread-safety FAIL
    fi
    rm -f "$TSAFETY_LOG"
  else
    echo "clang++ not installed; skipping (annotations still compile as no-ops under gcc)"
    record thread-safety SKIP
  fi
fi

# ---- 4. sanitizer builds ---------------------------------------------------
# run_sanitizer <sanitizer> [ctest-label]: builds the suite under the given
# sanitizer and runs either the whole suite or only the tests carrying the
# label (TSan runs the `concurrency` subset — its runtime slows the
# numerical tests severely and they carry no threading to check).
run_sanitizer() {
  local san="$1"
  local label="${2:-}"
  local dir="build-$san"
  local ok=1
  note "sanitizer: $san${label:+ (ctest -L $label)}"
  cmake -B "$dir" -S . -DREBERT_SANITIZE="$san" >/dev/null || { record "sanitizer-$san" FAIL; return; }
  cmake --build "$dir" -j "$JOBS" >/dev/null || { record "sanitizer-$san" FAIL; return; }
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" ${label:+-L "$label"}) || ok=0
  if [ -z "$label" ]; then
    # Explicit gates: the crash-safety and chaos suites must stay green
    # under this sanitizer even if the full run above is ever narrowed.
    (cd "$dir" && ctest --output-on-failure -j "$JOBS" -L persist) || ok=0
    (cd "$dir" && ctest --output-on-failure -j "$JOBS" -L chaos) || ok=0
  fi
  [ "$ok" -eq 1 ] && record "sanitizer-$san" PASS || record "sanitizer-$san" FAIL
}

if [ "$RUN_SAN" -eq 1 ]; then
  run_sanitizer address
  run_sanitizer undefined
  # ctest -L takes a regex: one TSan build covers both labelled subsets.
  run_sanitizer thread "concurrency|chaos"
fi

# ---- 4b. kernel backend gate ------------------------------------------------
# `ctest -L kernels` once per backend per sanitizer, REBERT_KERNELS pinned
# so the run exercises the named backend rather than whatever cpuid picks.
# Reuses (or builds) the stage-4 ASan/UBSan dirs.
if [ "$RUN_KERNELS" -eq 1 ]; then
  HAVE_AVX2=0
  if grep -q ' avx2 \| avx2$\|avx2 ' /proc/cpuinfo 2>/dev/null \
      && grep -q 'fma' /proc/cpuinfo 2>/dev/null; then
    HAVE_AVX2=1
  fi
  for san in address undefined; do
    note "kernel backends under $san (ctest -L kernels, scalar + avx2)"
    KOK=1
    KDIR="build-$san"
    cmake -B "$KDIR" -S . -DREBERT_SANITIZE="$san" >/dev/null || KOK=0
    if [ "$KOK" -eq 1 ]; then
      cmake --build "$KDIR" -j "$JOBS" >/dev/null || KOK=0
    fi
    if [ "$KOK" -eq 1 ]; then
      for backend in scalar avx2; do
        if [ "$backend" = avx2 ] && [ "$HAVE_AVX2" -eq 0 ]; then
          echo "host lacks AVX2+FMA; skipping the REBERT_KERNELS=avx2 leg"
          continue
        fi
        (cd "$KDIR" && REBERT_KERNELS="$backend" \
          ctest --output-on-failure -j "$JOBS" -L kernels) || KOK=0
      done
    fi
    [ "$KOK" -eq 1 ] && record "kernels-$san" PASS || record "kernels-$san" FAIL
  done
fi

# ---- 5. netlist lint over generated benchmarks -----------------------------
if [ "$RUN_LINT" -eq 1 ]; then
  note "netlist lint (b03..b18, R-Index 0 and 0.4)"
  ensure_cli || exit 1
  WORK=$(mktemp -d)
  trap 'rm -rf "$WORK"' EXIT
  LINT_ERRORS=0
  for bench in b03 b04 b05 b07 b08 b11 b12 b13 b14 b15 b17 b18; do
    "$CLI" gen --bench "$bench" --out "$WORK/$bench.bench" --words "$WORK/$bench.words" >/dev/null \
      || { echo "FAIL: gen $bench"; LINT_ERRORS=$((LINT_ERRORS + 1)); continue; }
    if ! "$CLI" lint --in "$WORK/$bench.bench" --words "$WORK/$bench.words" >/dev/null; then
      echo "FAIL: lint $bench (R=0)"
      "$CLI" lint --in "$WORK/$bench.bench" --words "$WORK/$bench.words" | grep '^error' | head -5
      LINT_ERRORS=$((LINT_ERRORS + 1))
    fi
    "$CLI" corrupt --in "$WORK/$bench.bench" --r-index 0.4 --seed 7 \
      --out "$WORK/$bench.r04.bench" >/dev/null \
      || { echo "FAIL: corrupt $bench"; LINT_ERRORS=$((LINT_ERRORS + 1)); continue; }
    if ! "$CLI" lint --in "$WORK/$bench.r04.bench" >/dev/null; then
      echo "FAIL: lint $bench (R=0.4)"
      LINT_ERRORS=$((LINT_ERRORS + 1))
    fi
  done
  if [ "$LINT_ERRORS" -eq 0 ]; then
    echo "all benchmarks lint clean of errors"
    record netlist-lint PASS
  else
    record netlist-lint FAIL
  fi
fi

# ---- 6. degraded-serving smoke ---------------------------------------------
# Arm the fault injector so every model forward fails, then demand that a
# stdio serving session still answers: recover must come back `ok` tagged
# `degraded=structural` (the structural baseline needs no model), and the
# health verb must report the degradation.
if [ "$RUN_SMOKE" -eq 1 ]; then
  note "degraded serving smoke (REBERT_FAULTS=model.forward:1.0:7)"
  ensure_cli || exit 1
  SMOKE_OUT=$(printf 'health\nrecover b03\nhealth\nquit\n' | \
    REBERT_FAULTS=model.forward:1.0:7 "$CLI" serve --scale 0.25 2>/dev/null)
  echo "$SMOKE_OUT"
  SMOKE_ERRORS=0
  echo "$SMOKE_OUT" | grep -q '^ok words=.*degraded=structural' \
    || { echo "FAIL: recover did not degrade to the structural baseline"; SMOKE_ERRORS=$((SMOKE_ERRORS + 1)); }
  echo "$SMOKE_OUT" | grep -q '^ok status=degraded' \
    || { echo "FAIL: health did not report status=degraded"; SMOKE_ERRORS=$((SMOKE_ERRORS + 1)); }
  if [ "$SMOKE_ERRORS" -eq 0 ]; then
    echo "degraded serving smoke passed"
    record degraded-smoke PASS
  else
    record degraded-smoke FAIL
  fi

  # Same drill over the binary wire protocol: a socket daemon with every
  # model forward failing must still answer `call --binary` — the degraded
  # tag and health report have to survive the frame encoding end to end.
  note "binary degraded serving smoke (call --binary against a faulted daemon)"
  BWORK=$(mktemp -d)
  BSOCK="$BWORK/serve.sock"
  BIN_ERRORS=0
  REBERT_FAULTS=model.forward:1.0:7 "$CLI" serve --socket "$BSOCK" \
    --scale 0.25 > "$BWORK/serve.log" 2>&1 &
  SERVE_PID=$!
  BREADY=0
  for _ in $(seq 1 240); do
    if "$CLI" call --socket "$BSOCK" --binary health 2>/dev/null \
        | grep -q '^ok '; then BREADY=1; break; fi
    sleep 0.5
  done
  if [ "$BREADY" -eq 1 ]; then
    "$CLI" call --socket "$BSOCK" --binary recover b03 2>/dev/null \
      | grep -q '^ok words=.*degraded=structural' \
      || { echo "FAIL: binary recover did not degrade to the structural baseline"; BIN_ERRORS=$((BIN_ERRORS + 1)); }
    "$CLI" call --socket "$BSOCK" --binary health 2>/dev/null \
      | grep -q '^ok status=degraded' \
      || { echo "FAIL: binary health did not report status=degraded"; BIN_ERRORS=$((BIN_ERRORS + 1)); }
  else
    echo "FAIL: faulted daemon never became ready"
    sed -n '1,20p' "$BWORK/serve.log"
    BIN_ERRORS=$((BIN_ERRORS + 1))
  fi
  kill "$SERVE_PID" 2>/dev/null
  wait "$SERVE_PID" 2>/dev/null
  rm -rf "$BWORK"
  if [ "$BIN_ERRORS" -eq 0 ]; then
    echo "binary degraded serving smoke passed"
    record binary-smoke PASS
  else
    record binary-smoke FAIL
  fi
fi

# ---- 7. sharded serving smoke ----------------------------------------------
# One router socket in front of two supervised serve backends. Drive real
# requests through the relay, SIGKILL one backend, and demand the fleet
# keeps answering — the dead backend's key range reroutes to the survivor
# (and the supervisor respawns the victim in the background).
if [ "$RUN_SHARDED" -eq 1 ]; then
  note "sharded serving smoke (route + 2 backends, one SIGKILLed)"
  ensure_cli || exit 1
  RWORK=$(mktemp -d)
  RSOCK="$RWORK/router.sock"
  SHARD_ERRORS=0
  "$CLI" route --socket "$RSOCK" --backends 2 --scale 0.25 \
    --max-inflight 8 > "$RWORK/route.log" 2>&1 &
  ROUTE_PID=$!
  # The drill kills one of two HEALTHY backends, so wait until the health
  # prober has admitted both (children boot full engines; allow minutes).
  READY=0
  for _ in $(seq 1 240); do
    if [ "$("$CLI" call --socket "$RSOCK" backends 2>/dev/null \
        | grep -o 'healthy=1' | wc -l)" -eq 2 ]; then READY=1; break; fi
    sleep 0.5
  done
  if [ "$READY" -eq 1 ]; then
    "$CLI" call --socket "$RSOCK" recover b03 2>/dev/null \
      | grep -q '^ok words=' \
      || { echo "FAIL: recover b03 through the router"; SHARD_ERRORS=$((SHARD_ERRORS + 1)); }
    BACKENDS=$("$CLI" call --socket "$RSOCK" backends 2>/dev/null)
    echo "$BACKENDS"
    VICTIM=$(echo "$BACKENDS" | grep -o 'name=backend1[^|]*' \
      | grep -o 'pid=[0-9]*' | cut -d= -f2)
    if [ -n "${VICTIM:-}" ] && [ "$VICTIM" -gt 0 ] 2>/dev/null; then
      kill -9 "$VICTIM" 2>/dev/null
      # The survivor answers once the prober evicts the corpse from the
      # ring (a few probe intervals); poll rather than demand instant
      # rerouting. --retry additionally rides out per-call shed advisories.
      REROUTED=0
      for _ in $(seq 1 60); do
        if "$CLI" call --socket "$RSOCK" --retry recover b03 2>/dev/null \
            | grep -q '^ok words='; then REROUTED=1; break; fi
        sleep 0.5
      done
      [ "$REROUTED" -eq 1 ] \
        || { echo "FAIL: recover after killing backend1"; SHARD_ERRORS=$((SHARD_ERRORS + 1)); }
      "$CLI" call --socket "$RSOCK" stats 2>/dev/null \
        | grep -q '^ok role=router' \
        || { echo "FAIL: router stats unavailable after the kill"; SHARD_ERRORS=$((SHARD_ERRORS + 1)); }
    else
      echo "FAIL: could not parse backend1 pid from backends output"
      SHARD_ERRORS=$((SHARD_ERRORS + 1))
    fi
  else
    echo "FAIL: router fleet never became ready"
    "$CLI" call --socket "$RSOCK" backends 2>/dev/null
    sed -n '1,20p' "$RWORK/route.log"
    SHARD_ERRORS=$((SHARD_ERRORS + 1))
  fi
  kill "$ROUTE_PID" 2>/dev/null
  wait "$ROUTE_PID" 2>/dev/null
  rm -rf "$RWORK"
  if [ "$SHARD_ERRORS" -eq 0 ]; then
    echo "sharded serving smoke passed"
    record sharded-smoke PASS
  else
    record sharded-smoke FAIL
  fi
fi

# ---- 8. binary warm-start kill drill ----------------------------------------
# The O(1) warm-start acceptance drill, all traffic over the binary wire
# protocol: a supervised fleet snapshots each backend's cache to its own
# RBPC v2 file after every request. One backend is primed, SIGKILLed, and
# respawned by the supervisor — and its FIRST answer must already be warm:
# stats polled before any score/recover reaches it have to show
# warm_entries > 0 (the mmap tier attached at boot) with cache_misses = 0
# (nothing was re-scored to get there).
if [ "$RUN_SHARDED" -eq 1 ]; then
  note "binary warm-start kill drill (route + snapshots, SIGKILL, warm respawn)"
  ensure_cli || exit 1
  WWORK=$(mktemp -d)
  WSOCK="$WWORK/router.sock"
  WARM_ERRORS=0
  "$CLI" route --socket "$WSOCK" --backends 2 --scale 0.25 \
    --max-inflight 8 --cache-file "$WWORK/cache.rbpc" --snapshot-every 1 \
    > "$WWORK/route.log" 2>&1 &
  WROUTE_PID=$!
  WREADY=0
  for _ in $(seq 1 240); do
    if [ "$("$CLI" call --socket "$WSOCK" backends 2>/dev/null \
        | grep -o 'healthy=1' | wc -l)" -eq 2 ]; then WREADY=1; break; fi
    sleep 0.5
  done
  if [ "$WREADY" -eq 1 ]; then
    # Prime the victim directly on its own socket (placement-independent),
    # over the binary protocol; --snapshot-every 1 persists the scores
    # immediately.
    "$CLI" call --socket "$WSOCK.backend1" --binary recover b03 2>/dev/null \
      | grep -q '^ok words=' \
      || { echo "FAIL: priming recover on backend1"; WARM_ERRORS=$((WARM_ERRORS + 1)); }
    # Wait for a snapshot written strictly AFTER the prime landed. Health
    # probes also trigger cadence snapshots (and a cadence save skips when
    # another save holds the lock), so a merely non-empty file may predate
    # the prime and hold zero entries — killing on that evidence races.
    sleep 0.6
    touch "$WWORK/prime.marker"
    SNAP_FRESH=0
    for _ in $(seq 1 60); do
      if [ -n "$(find "$WWORK/cache.rbpc.backend1" -newer "$WWORK/prime.marker" 2>/dev/null)" ]; then
        SNAP_FRESH=1; break
      fi
      sleep 0.5
    done
    [ "$SNAP_FRESH" -eq 1 ] \
      || { echo "FAIL: backend1 wrote no post-prime snapshot"; WARM_ERRORS=$((WARM_ERRORS + 1)); }
    VICTIM=$("$CLI" call --socket "$WSOCK" backends 2>/dev/null \
      | grep -o 'name=backend1[^|]*' | grep -o 'pid=[0-9]*' | cut -d= -f2)
    if [ -n "${VICTIM:-}" ] && [ "$VICTIM" -gt 0 ] 2>/dev/null; then
      kill -9 "$VICTIM" 2>/dev/null
      # First contact with the respawn is a stats probe — never a scoring
      # request — so the counters below prove the warmth came from the
      # mapped snapshot, not from re-scoring.
      WSTATS=""
      for _ in $(seq 1 240); do
        WSTATS=$("$CLI" call --socket "$WSOCK.backend1" --binary stats 2>/dev/null)
        if echo "$WSTATS" | grep -q '^ok threads='; then break; fi
        WSTATS=""
        sleep 0.5
      done
      if [ -n "$WSTATS" ]; then
        echo "$WSTATS"
        echo "$WSTATS" | grep -q 'warm_entries=0 ' \
          && { echo "FAIL: respawned backend1 has no warm entries"; WARM_ERRORS=$((WARM_ERRORS + 1)); }
        echo "$WSTATS" | grep -q 'cache_misses=0 ' \
          || { echo "FAIL: respawned backend1 already took cold misses"; WARM_ERRORS=$((WARM_ERRORS + 1)); }
        # And the fleet answers the re-run through the router, warm.
        "$CLI" call --socket "$WSOCK" --binary --retry recover b03 2>/dev/null \
          | grep -q '^ok words=' \
          || { echo "FAIL: recover b03 through the router after respawn"; WARM_ERRORS=$((WARM_ERRORS + 1)); }
      else
        echo "FAIL: backend1 never respawned"
        sed -n '1,20p' "$WWORK/route.log"
        WARM_ERRORS=$((WARM_ERRORS + 1))
      fi
    else
      echo "FAIL: could not parse backend1 pid from backends output"
      WARM_ERRORS=$((WARM_ERRORS + 1))
    fi
  else
    echo "FAIL: router fleet never became ready"
    sed -n '1,20p' "$WWORK/route.log"
    WARM_ERRORS=$((WARM_ERRORS + 1))
  fi
  kill "$WROUTE_PID" 2>/dev/null
  wait "$WROUTE_PID" 2>/dev/null
  rm -rf "$WWORK"
  if [ "$WARM_ERRORS" -eq 0 ]; then
    echo "binary warm-start kill drill passed"
    record warm-kill-drill PASS
  else
    record warm-kill-drill FAIL
  fi
fi

# ---- 8b. replica failover smoke ----------------------------------------------
# The R = 2 warm-failover acceptance, end to end through the CLI: a score
# primed through the router is answered by the bench's primary and
# asynchronously mirrored onto its secondary. After SIGKILLing the primary
# the resend must come back `ok` with ZERO new cache misses on the
# survivor — the victim's key range is served warm, not re-scored.
if [ "$RUN_SHARDED" -eq 1 ]; then
  note "replica failover smoke (route --replicas 2, mirror-warm, SIGKILL primary)"
  ensure_cli || exit 1
  FWORK=$(mktemp -d)
  FSOCK="$FWORK/router.sock"
  FO_ERRORS=0
  # A words file for b03 at the fleet's scale gives real bit names for the
  # score line (the words map groups exactly the netlist's bit names).
  "$CLI" gen --bench b03 --scale 0.25 --out "$FWORK/b03.bench" \
    --words "$FWORK/b03.words" >/dev/null \
    || { echo "FAIL: gen b03"; FO_ERRORS=$((FO_ERRORS + 1)); }
  BIT_A=$(grep -v '^#' "$FWORK/b03.words" | head -1 | cut -d: -f2 | awk '{print $1}')
  BIT_B=$(grep -v '^#' "$FWORK/b03.words" | head -1 | cut -d: -f2 | awk '{print $2}')
  [ -n "${BIT_B:-}" ] || BIT_B="$BIT_A"
  "$CLI" route --socket "$FSOCK" --backends 2 --scale 0.25 \
    --max-inflight 8 --replicas 2 > "$FWORK/route.log" 2>&1 &
  FROUTE_PID=$!
  FREADY=0
  for _ in $(seq 1 240); do
    if [ "$("$CLI" call --socket "$FSOCK" backends 2>/dev/null \
        | grep -o 'healthy=1' | wc -l)" -eq 2 ]; then FREADY=1; break; fi
    sleep 0.5
  done
  if [ "$FREADY" -eq 1 ] && [ -n "${BIT_A:-}" ]; then
    # Failover order for b03: owners=<primary>,<secondary>. Poll through
    # transient probe flaps — a backend marked unhealthy for one probe
    # interval drops out of the ring and out of this listing until the
    # next successful probe revives it.
    OWNERS=""
    for _ in $(seq 1 60); do
      OWNERS=$("$CLI" call --socket "$FSOCK" owners b03 2>/dev/null \
        | grep -o 'owners=[^ ]*' | cut -d= -f2)
      case "$OWNERS" in *,*) break ;; esac
      sleep 0.5
    done
    PRIMARY=${OWNERS%%,*}
    SECONDARY=${OWNERS##*,}
    if [ -n "$PRIMARY" ] && [ -n "$SECONDARY" ] && [ "$PRIMARY" != "$SECONDARY" ]; then
      "$CLI" call --socket "$FSOCK" --retry score b03 "$BIT_A" "$BIT_B" 2>/dev/null \
        | grep -q '^ok ' \
        || { echo "FAIL: priming score through the router"; FO_ERRORS=$((FO_ERRORS + 1)); }
      # Wait until the secondary holds the scored pair. Normally the async
      # mirror replay puts it there; if an early-boot health flap made the
      # secondary answer the prime itself (a failover replica hit), it is
      # warm directly — either way its cache must be populated before the
      # kill, or the zero-cold-miss assertion below would be vacuous.
      WARMED=0
      for _ in $(seq 1 60); do
        if "$CLI" call --socket "$FSOCK.$SECONDARY" stats 2>/dev/null \
            | grep -qE 'cache_entries=[1-9]'; then WARMED=1; break; fi
        sleep 0.5
      done
      [ "$WARMED" -eq 1 ] \
        || { echo "FAIL: secondary never became warm after the prime"; FO_ERRORS=$((FO_ERRORS + 1)); }
      "$CLI" call --socket "$FSOCK" stats 2>/dev/null \
        | grep -qE 'mirrored=[1-9]|replica_hits=[1-9]' \
        || { echo "FAIL: neither mirror replay nor a replica hit warmed the secondary"; FO_ERRORS=$((FO_ERRORS + 1)); }
      MISSES_BEFORE=$("$CLI" call --socket "$FSOCK.$SECONDARY" stats 2>/dev/null \
        | grep -o 'cache_misses=[0-9]*' | cut -d= -f2)
      VICTIM=$("$CLI" call --socket "$FSOCK" backends 2>/dev/null \
        | grep -o "name=$PRIMARY[^|]*" | grep -o 'pid=[0-9]*' | cut -d= -f2)
      if [ -n "${VICTIM:-}" ] && [ "$VICTIM" -gt 0 ] 2>/dev/null \
          && [ -n "${MISSES_BEFORE:-}" ]; then
        kill -9 "$VICTIM" 2>/dev/null
        FANSWERED=0
        for _ in $(seq 1 60); do
          if "$CLI" call --socket "$FSOCK" --retry score b03 "$BIT_A" "$BIT_B" 2>/dev/null \
              | grep -q '^ok '; then FANSWERED=1; break; fi
          sleep 0.5
        done
        [ "$FANSWERED" -eq 1 ] \
          || { echo "FAIL: score after killing the primary"; FO_ERRORS=$((FO_ERRORS + 1)); }
        MISSES_AFTER=$("$CLI" call --socket "$FSOCK.$SECONDARY" stats 2>/dev/null \
          | grep -o 'cache_misses=[0-9]*' | cut -d= -f2)
        echo "survivor $SECONDARY cache_misses: ${MISSES_BEFORE:-?} -> ${MISSES_AFTER:-?}"
        [ -n "${MISSES_AFTER:-}" ] && [ "$MISSES_AFTER" = "$MISSES_BEFORE" ] \
          || { echo "FAIL: survivor took cold misses during failover"; FO_ERRORS=$((FO_ERRORS + 1)); }
        "$CLI" call --socket "$FSOCK" stats 2>/dev/null \
          | grep -qE 'replica_hits=[1-9]|reroutes=[1-9]|backends_failed=[1-9]' \
          || { echo "FAIL: router stats show no failover evidence"; FO_ERRORS=$((FO_ERRORS + 1)); }
      else
        echo "FAIL: could not parse the primary's pid or the survivor's stats"
        FO_ERRORS=$((FO_ERRORS + 1))
      fi
    else
      echo "FAIL: owners b03 did not list two distinct replicas (got '$OWNERS')"
      FO_ERRORS=$((FO_ERRORS + 1))
    fi
  else
    echo "FAIL: router fleet never became ready (or no bit names)"
    sed -n '1,20p' "$FWORK/route.log"
    FO_ERRORS=$((FO_ERRORS + 1))
  fi
  kill "$FROUTE_PID" 2>/dev/null
  wait "$FROUTE_PID" 2>/dev/null
  rm -rf "$FWORK"
  if [ "$FO_ERRORS" -eq 0 ]; then
    echo "replica failover smoke passed"
    record replica-failover PASS
  else
    record replica-failover FAIL
  fi
fi

# ---- 9. C10K reactor smoke --------------------------------------------------
# A thousand idle connections parked on the reactor while live traffic is
# driven through it. The bench itself enforces the acceptance: thread
# count must not grow with connection count, the active clients must see
# zero errors within their deadlines, the p95 under load must stay within
# bounds of the unloaded baseline, and stop() must return (a wedge shows
# up as the bench hanging until this script's caller loses patience).
if [ "$RUN_C10K" -eq 1 ]; then
  note "C10K smoke (serve_overload --connections 1000)"
  if ensure_overload_bench; then
    CWORK=$(mktemp -d)
    if (cd "$CWORK" && \
        REBERT_SCALE=0.1 REBERT_OVERLOAD_REQUESTS=5 \
        REBERT_OVERLOAD_CLIENTS=4 \
        "$OVERLOAD_BENCH" --connections 1000); then
      echo "C10K smoke passed"
      record c10k-smoke PASS
    else
      record c10k-smoke FAIL
    fi
    rm -rf "$CWORK"
  else
    record c10k-smoke FAIL
  fi
fi

# ---- summary ---------------------------------------------------------------
note "summary"
printf '%-18s %s\n' "stage" "result"
printf '%-18s %s\n' "-----" "------"
for i in "${!STAGE_NAMES[@]}"; do
  printf '%-18s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
done
if [ "$FAILURES" -eq 0 ]; then
  echo "static analysis passed"
else
  echo "static analysis: $FAILURES stage(s) failed"
fi
exit "$((FAILURES > 0))"
