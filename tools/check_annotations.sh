#!/usr/bin/env bash
# Guard against regressions of the locking discipline (DESIGN.md "Locking
# discipline"): all production code must synchronize through the annotated
# rebert::util::Mutex / MutexLock / CondVar wrappers, never the raw
# standard-library primitives. Raw primitives are invisible to clang's
# -Wthread-safety capability analysis and to the debug lock-order registry,
# so one raw std::mutex quietly punches a hole in both.
#
# Scanned: src/ apps/ bench/ (tests may use raw primitives to exercise the
# pool from outside the discipline).
# Exempt: src/util/mutex.h and src/util/mutex.cc — the wrapper itself sits
# on std::mutex, and the registry's own leaf lock is deliberately raw.
#
# A second rule bans ad-hoc `thread_local` state: per-thread storage is
# invisible to the lock hierarchy and tends to grow into hidden caches
# with unclear lifetimes. The sanctioned homes are the lock registry's
# held-locks list (src/util/mutex.cc), the kernel scratch arena
# (src/kernels/arena.cc — see DESIGN.md "Kernel dispatch & scratch
# arenas"), and the inert eval-mode RNG (src/bert/model.cc). Anything
# else should route scratch space through kernels::thread_arena().
#
# Exit 0 when clean, 1 with a file:line listing on any violation.
set -u

cd "$(dirname "$0")/.."

BANNED='std::mutex|std::timed_mutex|std::recursive_mutex|std::shared_mutex|std::lock_guard|std::unique_lock|std::scoped_lock|std::shared_lock|std::condition_variable|<mutex>|<shared_mutex>|<condition_variable>'

SCAN_DIRS=()
for dir in src apps bench; do
  [ -d "$dir" ] && SCAN_DIRS+=("$dir")
done

VIOLATIONS=$(grep -rnE "$BANNED" "${SCAN_DIRS[@]}" \
    --include='*.h' --include='*.cc' --include='*.hpp' --include='*.cpp' \
    | grep -v '^src/util/mutex\.\(h\|cc\):' \
    | grep -v '^\([^:]*\):[0-9]*: *//' || true)

if [ -n "$VIOLATIONS" ]; then
  echo "check_annotations: raw synchronization primitives outside src/util/mutex.{h,cc}:" >&2
  echo "$VIOLATIONS" >&2
  echo "use rebert::util::Mutex / MutexLock / CondVar (src/util/mutex.h) instead" >&2
  exit 1
fi

TL_VIOLATIONS=$(grep -rnE '(^|[^_[:alnum:]])thread_local([^_[:alnum:]]|$)' "${SCAN_DIRS[@]}" \
    --include='*.h' --include='*.cc' --include='*.hpp' --include='*.cpp' \
    | grep -v '^src/util/mutex\.cc:' \
    | grep -v '^src/kernels/arena\.cc:' \
    | grep -v '^src/bert/model\.cc:' \
    | grep -v '^\([^:]*\):[0-9]*: *//' || true)

if [ -n "$TL_VIOLATIONS" ]; then
  echo "check_annotations: ad-hoc thread_local outside the sanctioned homes:" >&2
  echo "$TL_VIOLATIONS" >&2
  echo "route per-thread scratch through kernels::thread_arena() (src/kernels/arena.h)" >&2
  exit 1
fi

echo "check_annotations: all synchronization goes through util::Mutex; no ad-hoc thread_local"
exit 0
