#!/usr/bin/env bash
# Guard against regressions of the locking discipline (DESIGN.md "Locking
# discipline"): all production code must synchronize through the annotated
# rebert::util::Mutex / MutexLock / CondVar wrappers, never the raw
# standard-library primitives. Raw primitives are invisible to clang's
# -Wthread-safety capability analysis and to the debug lock-order registry,
# so one raw std::mutex quietly punches a hole in both.
#
# Scanned: src/ apps/ bench/ (tests may use raw primitives to exercise the
# pool from outside the discipline).
# Exempt: src/util/mutex.h and src/util/mutex.cc — the wrapper itself sits
# on std::mutex, and the registry's own leaf lock is deliberately raw.
#
# Exit 0 when clean, 1 with a file:line listing on any violation.
set -u

cd "$(dirname "$0")/.."

BANNED='std::mutex|std::timed_mutex|std::recursive_mutex|std::shared_mutex|std::lock_guard|std::unique_lock|std::scoped_lock|std::shared_lock|std::condition_variable|<mutex>|<shared_mutex>|<condition_variable>'

SCAN_DIRS=()
for dir in src apps bench; do
  [ -d "$dir" ] && SCAN_DIRS+=("$dir")
done

VIOLATIONS=$(grep -rnE "$BANNED" "${SCAN_DIRS[@]}" \
    --include='*.h' --include='*.cc' --include='*.hpp' --include='*.cpp' \
    | grep -v '^src/util/mutex\.\(h\|cc\):' \
    | grep -v '^\([^:]*\):[0-9]*: *//' || true)

if [ -n "$VIOLATIONS" ]; then
  echo "check_annotations: raw synchronization primitives outside src/util/mutex.{h,cc}:" >&2
  echo "$VIOLATIONS" >&2
  echo "use rebert::util::Mutex / MutexLock / CondVar (src/util/mutex.h) instead" >&2
  exit 1
fi

echo "check_annotations: all synchronization goes through util::Mutex"
exit 0
